package stat

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs without mutating it, or 0 for an empty
// slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// MinMax returns the minimum and maximum of xs. It panics on an empty slice
// because there is no meaningful zero value for an extremum.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		//lint:ignore panics documented programmer-error panic: the doc comment requires a non-empty slice and there is no meaningful zero extremum
		panic("stat: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		//lint:ignore panics documented programmer-error panic: inverted bounds are a caller bug, not a runtime condition
		panic(fmt.Sprintf("stat: Clamp with inverted bounds [%v, %v]", lo, hi))
	}
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// Summary holds descriptive statistics for a sample, used by the experiment
// harness to report sweep results.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Median float64
	Min    float64
	Max    float64
}

// Describe computes a Summary of xs. An empty sample yields a zero Summary.
func Describe(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	lo, hi := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Median: Median(xs),
		Min:    lo,
		Max:    hi,
	}
}

// String renders a Summary compactly for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g med=%.4g min=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Median, s.Min, s.Max)
}
