// Package stat provides the numerical substrate for crowdrank.
//
// The paper's truth-discovery step (Section V-A) weights each worker by a
// chi-square percentile divided by the worker's total squared error
// (Equation 5), and the simulation setting draws worker error rates from
// normal and uniform distributions. Go's standard library offers math.Lgamma
// and little else, so this package implements the required special functions
// from scratch: the regularized incomplete gamma function, the chi-square
// CDF and quantile, and the inverse normal CDF. All routines are pure
// functions with no global state.
package stat

import (
	"errors"
	"fmt"
	"math"

	"crowdrank/internal/feq"
)

// Numerical tuning constants for the special-function evaluators. They
// mirror the classical Numerical Recipes tolerances, which are tight enough
// for the [1e-8, 1-1e-8] probability range used by truth discovery.
const (
	maxIterations = 500
	epsilon       = 3.0e-14
	tiny          = 1.0e-300
)

// ErrConvergence is returned (wrapped) when an iterative special-function
// evaluation fails to converge within maxIterations. It indicates arguments
// far outside the supported range rather than a recoverable condition.
var ErrConvergence = errors.New("stat: series did not converge")

// GammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
//
// P(a, x) is the CDF of a Gamma(shape=a, scale=1) random variable at x; the
// chi-square CDF is P(df/2, x/2). The series expansion converges fastest for
// x < a+1 and the continued fraction elsewhere, so the function dispatches
// on that boundary.
func GammaP(a, x float64) (float64, error) {
	switch {
	case a <= 0:
		return 0, fmt.Errorf("stat: GammaP requires a > 0, got a=%v", a)
	case x < 0:
		return 0, fmt.Errorf("stat: GammaP requires x >= 0, got x=%v", x)
	case feq.Zero(x):
		return 0, nil
	case math.IsInf(x, 1):
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		if err != nil {
			return 0, err
		}
		return p, nil
	}
	q, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// GammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) (float64, error) {
	switch {
	case a <= 0:
		return 0, fmt.Errorf("stat: GammaQ requires a > 0, got a=%v", a)
	case x < 0:
		return 0, fmt.Errorf("stat: GammaQ requires x >= 0, got x=%v", x)
	case feq.Zero(x):
		return 1, nil
	case math.IsInf(x, 1):
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaContinuedFraction(a, x)
}

// gammaIterations returns the iteration budget for the series / continued
// fraction: convergence near x ~ a needs O(sqrt(a)) terms, so the budget
// grows with a.
func gammaIterations(a float64) int {
	n := int(20*math.Sqrt(a)) + maxIterations
	return n
}

// gammaSeries evaluates P(a, x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < gammaIterations(a); n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsilon {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("%w: gammaSeries(a=%v, x=%v)", ErrConvergence, a, x)
}

// gammaContinuedFraction evaluates Q(a, x) by the Lentz modified continued
// fraction, valid for x >= a+1.
func gammaContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1.0 / tiny
	d := 1.0 / b
	h := d
	for i := 1; i <= gammaIterations(a); i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("%w: gammaContinuedFraction(a=%v, x=%v)", ErrConvergence, a, x)
}

// ChiSquareCDF returns P(X <= x) for a chi-square random variable X with df
// degrees of freedom. df may be fractional (df > 0).
func ChiSquareCDF(x float64, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stat: ChiSquareCDF requires df > 0, got df=%v", df)
	}
	if x <= 0 {
		return 0, nil
	}
	return GammaP(df/2, x/2)
}

// ChiSquarePDF returns the chi-square density at x for df degrees of freedom.
func ChiSquarePDF(x float64, df float64) float64 {
	if df <= 0 || x <= 0 {
		return 0
	}
	half := df / 2
	lg, _ := math.Lgamma(half)
	logPDF := (half-1)*math.Log(x) - x/2 - half*math.Ln2 - lg
	return math.Exp(logPDF)
}

// ChiSquareQuantile returns the p-th quantile of the chi-square distribution
// with df degrees of freedom: the x such that ChiSquareCDF(x, df) = p.
//
// Truth discovery (Equation 5 of the paper) calls this with p = alpha/2 and
// df = |T_k|, the number of tasks answered by worker k. The implementation
// seeds with the Wilson-Hilferty normal approximation and polishes with
// Newton iterations on the CDF, falling back to bisection when Newton steps
// leave the bracket.
func ChiSquareQuantile(p float64, df float64) (float64, error) {
	switch {
	case df <= 0:
		return 0, fmt.Errorf("stat: ChiSquareQuantile requires df > 0, got df=%v", df)
	case p < 0 || p > 1:
		return 0, fmt.Errorf("stat: ChiSquareQuantile requires 0 <= p <= 1, got p=%v", p)
	case feq.Zero(p):
		return 0, nil
	case feq.One(p):
		return math.Inf(1), nil
	}

	x := wilsonHilferty(p, df)
	if x <= 0 || math.IsNaN(x) {
		x = df // crude but safe seed for extreme p
	}
	// For very large df the Wilson-Hilferty approximation is accurate to
	// many digits and Newton refinement of the incomplete gamma becomes
	// needlessly expensive; return it directly.
	if df > 5000 {
		return x, nil
	}

	// Newton iterations with a maintained bracket [lo, hi].
	lo, hi := 0.0, math.Max(4*df+20, 4*x+20)
	for cdfHi, err := ChiSquareCDF(hi, df); err == nil && cdfHi < p; cdfHi, err = ChiSquareCDF(hi, df) {
		hi *= 2
		if math.IsInf(hi, 1) {
			return 0, fmt.Errorf("stat: ChiSquareQuantile bracket overflow (p=%v, df=%v)", p, df)
		}
	}
	for i := 0; i < 200; i++ {
		cdf, err := ChiSquareCDF(x, df)
		if err != nil {
			return 0, err
		}
		diff := cdf - p
		if math.Abs(diff) < 1e-12 {
			return x, nil
		}
		if diff > 0 {
			hi = x
		} else {
			lo = x
		}
		pdf := ChiSquarePDF(x, df)
		var next float64
		if pdf > tiny {
			next = x - diff/pdf
		}
		if pdf <= tiny || next <= lo || next >= hi {
			next = (lo + hi) / 2 // bisection fallback keeps the bracket shrinking
		}
		if math.Abs(next-x) < 1e-13*(1+x) {
			return next, nil
		}
		x = next
	}
	return x, nil
}

// wilsonHilferty is the classical cube-root normal approximation to the
// chi-square quantile, used to seed Newton iteration.
func wilsonHilferty(p, df float64) float64 {
	z := NormalQuantile(p)
	t := 1 - 2/(9*df) + z*math.Sqrt(2/(9*df))
	return df * t * t * t
}

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalPDF returns the standard normal density at z.
func NormalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns the p-th quantile of the standard normal
// distribution using Acklam's rational approximation refined by one Halley
// step, accurate to ~1e-15 over (0, 1). It returns -Inf/+Inf at p = 0/1 and
// NaN outside [0, 1].
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case feq.Zero(p):
		return math.Inf(-1)
	case feq.One(p):
		return math.Inf(1)
	}

	// Coefficients for Acklam's approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}
