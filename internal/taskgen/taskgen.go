// Package taskgen implements the paper's task assignment stage (Section IV):
// generating a budget-constrained task graph G_T that is fair (Theorem 4.1:
// every vertex has the same degree, so every object has probability 2/3^d of
// being an in-/out-node) and of high HP-likelihood (Theorem 4.4: the lower
// bound Pr_l on the transitive closure admitting a Hamiltonian path is
// maximized when d_min = d_max = 2l/n).
//
// Algorithm 1 of the paper seeds the graph with a random Hamiltonian path
// and then tops every vertex up to the target degree. The paper's pseudocode
// leaves the dead-end cases open (the last vertices needing degree may
// already be adjacent); this implementation resolves them with a
// configuration-model stub pairing followed by edge-swap repair, falling
// back to greedy fill, so the output always has exactly l edges.
package taskgen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"crowdrank/internal/graph"
	"crowdrank/internal/invariant"
)

// Plan describes a generated task assignment.
type Plan struct {
	// Graph is the task graph G_T with exactly L edges.
	Graph *graph.TaskGraph
	// SeedPath is the Hamiltonian path used to seed the graph (a random
	// permutation of the objects); G_T is guaranteed to contain it.
	SeedPath []int
	// L is the number of pairwise comparison tasks (edges).
	L int
	// TargetDegree is 2L/N rounded down; vertices have degree TargetDegree
	// or TargetDegree+1 when 2L is not divisible by N.
	TargetDegree int
}

// Pairs returns the comparison tasks as canonical (i < j) pairs.
func (p *Plan) Pairs() []graph.Pair { return p.Graph.Edges() }

// MaxPairs returns C(n, 2), the number of distinct comparisons of n objects.
func MaxPairs(n int) int {
	if n < 2 {
		return 0
	}
	return n * (n - 1) / 2
}

// BudgetPairs returns l = floor(B / (w * reward)), the number of unique
// pairwise comparisons affordable with budget B when each comparison is
// answered by w workers at reward per answer (Section II).
func BudgetPairs(budget float64, workersPerTask int, reward float64) (int, error) {
	if budget < 0 {
		return 0, fmt.Errorf("taskgen: negative budget %v", budget)
	}
	if workersPerTask < 1 {
		return 0, fmt.Errorf("taskgen: need at least one worker per task, got %d", workersPerTask)
	}
	if reward <= 0 {
		return 0, fmt.Errorf("taskgen: reward must be positive, got %v", reward)
	}
	return int(budget / (float64(workersPerTask) * reward)), nil
}

// PairsForRatio returns l = round(r * C(n,2)) clamped to [n-1, C(n,2)]: the
// experiment sections express budgets as a selection ratio r of all pairs.
func PairsForRatio(n int, ratio float64) (int, error) {
	if n < 2 {
		return 0, fmt.Errorf("taskgen: need at least two objects, got n=%d", n)
	}
	if ratio <= 0 || ratio > 1 {
		return 0, fmt.Errorf("taskgen: selection ratio %v outside (0,1]", ratio)
	}
	l := int(math.Round(ratio * float64(MaxPairs(n))))
	if l < n-1 {
		l = n - 1
	}
	if max := MaxPairs(n); l > max {
		l = max
	}
	return l, nil
}

// InOutProbability returns Prob(v^IO) = 2/3^d (Equation 2): the probability
// that a vertex of degree d is an in-node or out-node across the 3^l
// possible preference-graph instances of the task graph.
func InOutProbability(degree int) float64 {
	if degree < 0 {
		return 0
	}
	return 2 / math.Pow(3, float64(degree))
}

// HPLikelihoodLowerBound returns Pr_l of Theorem 4.4: a lower bound on the
// probability that the transitive closure of any preference graph built from
// a task graph with n vertices and degree range [dmin, dmax] contains no
// more than one in-node/out-node (a necessary condition for an HP).
func HPLikelihoodLowerBound(n, dmin, dmax int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("taskgen: n must be positive, got %d", n)
	}
	if dmin < 0 || dmax < dmin {
		return 0, fmt.Errorf("taskgen: invalid degree range [%d, %d]", dmin, dmax)
	}
	pow := math.Pow(3, float64(dmax))
	if pow <= 2 { // dmax = 0: the bound's denominators vanish
		return 0, nil
	}
	nf := float64(n)
	base := math.Pow(1-2/math.Pow(3, float64(dmin)), nf)
	denom := pow - 2
	bracket := 1 + 2*nf/denom + nf*(nf-1)/(2*denom*denom)
	bound := base * bracket
	if bound < 0 {
		bound = 0
	}
	if bound > 1 {
		bound = 1
	}
	return bound, nil
}

// Generate builds a fair, high-HP-likelihood task graph with exactly l edges
// over n objects (Algorithm 1). It requires n-1 <= l <= C(n,2): fewer edges
// cannot contain a Hamiltonian path (Theorem 4.2) and more cannot be
// distinct comparisons. rng drives all random choices, so a fixed source
// yields a reproducible plan.
func Generate(n, l int, rng *rand.Rand) (*Plan, error) {
	if rng == nil {
		return nil, fmt.Errorf("taskgen: nil random source")
	}
	if n < 2 {
		return nil, fmt.Errorf("taskgen: need at least two objects, got n=%d", n)
	}
	if l < n-1 {
		return nil, fmt.Errorf("taskgen: l=%d cannot contain a Hamiltonian path over n=%d objects (need l >= %d)", l, n, n-1)
	}
	if max := MaxPairs(n); l > max {
		return nil, fmt.Errorf("taskgen: l=%d exceeds the %d distinct pairs of n=%d objects", l, max, n)
	}

	g, err := graph.NewTaskGraph(n)
	if err != nil {
		return nil, fmt.Errorf("taskgen: %w", err)
	}

	// Line 4 of Algorithm 1: a random path connecting all vertices.
	path := rng.Perm(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(path[i-1], path[i]); err != nil {
			return nil, fmt.Errorf("taskgen: seeding HP: %w", err)
		}
	}

	extra := l - (n - 1)
	if extra > 0 {
		if err := addRegularEdges(g, extra, rng); err != nil {
			return nil, fmt.Errorf("taskgen: %w", err)
		}
	}
	if g.M() != l {
		return nil, fmt.Errorf("taskgen: internal error: built %d edges, wanted %d", g.M(), l)
	}
	// Stage-boundary assertion (no-op unless built with
	// -tags crowdrank_invariants): connectivity, edge budget, and the
	// Theorem 4.1 near-regular degree sequence.
	invariant.CheckTaskGraph(g, l)
	return &Plan{
		Graph:        g,
		SeedPath:     path,
		L:            l,
		TargetDegree: 2 * l / n,
	}, nil
}

// addRegularEdges adds extra edges so the final degree sequence is as flat
// as possible: every vertex ends at floor(2l/n) or ceil(2l/n). It first
// attempts a configuration-model stub pairing with edge-swap repair, then
// greedily fills any remainder.
func addRegularEdges(g *graph.TaskGraph, extra int, rng *rand.Rand) error {
	n := g.N()
	l := g.M() + extra
	base := 2 * l / n
	overflow := 2*l - base*n // this many vertices get degree base+1

	// Residual degree demand per vertex given the HP already in place.
	target := make([]int, n)
	for i := range target {
		target[i] = base
	}
	// Give the +1 allowance preferentially to vertices that already exceed
	// base (HP interior vertices when base is small), then randomly.
	order := rng.Perm(n)
	granted := 0
	for _, v := range order {
		if granted < overflow && g.Degree(v) > base {
			target[v]++
			granted++
		}
	}
	for _, v := range order {
		if granted == overflow {
			break
		}
		if target[v] == base && g.Degree(v) <= base {
			target[v]++
			granted++
		}
	}

	added := pairStubs(g, target, extra, rng)
	if added < extra {
		if err := greedyFill(g, extra-added, rng); err != nil {
			return err
		}
	}
	return nil
}

type stubEdge struct{ u, v int }

// pairStubs performs configuration-model pairing: each vertex contributes
// (target - degree) stubs, the stubs are shuffled and paired, and invalid
// pairs (self-loops, duplicate edges) are resolved by a degree-preserving
// double-edge swap against a random previously accepted pair. Returns the
// number of edges added (at most budget).
func pairStubs(g *graph.TaskGraph, target []int, budget int, rng *rand.Rand) int {
	var stubs []int
	for v := range target {
		for d := g.Degree(v); d < target[v]; d++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	var pending []stubEdge
	for i := 0; i+1 < len(stubs) && len(pending) < budget; i += 2 {
		pending = append(pending, stubEdge{u: stubs[i], v: stubs[i+1]})
	}

	const swapAttempts = 64
	var accepted []stubEdge
	for _, e := range pending {
		if e.u != e.v && !g.HasEdge(e.u, e.v) {
			if err := g.AddEdge(e.u, e.v); err == nil {
				accepted = append(accepted, e)
			}
			continue
		}
		// Repair by double-edge swap: remove an accepted edge (x, y) and
		// add (e.u, x) and (e.v, y) — or the crossed variant — which keeps
		// every vertex's degree unchanged while realizing both stubs.
		for attempt := 0; attempt < swapAttempts && len(accepted) > 0; attempt++ {
			k := rng.IntN(len(accepted))
			other := accepted[k]
			if a, b, ok := swapCandidate(g, e, other); ok {
				g.RemoveEdge(other.u, other.v)
				mustAdd(g, e.u, a)
				mustAdd(g, e.v, b)
				accepted[k] = stubEdge{u: e.u, v: a}
				accepted = append(accepted, stubEdge{u: e.v, v: b})
				break
			}
		}
	}
	return len(accepted)
}

// swapCandidate reports whether removing accepted edge `other` and adding
// (e.u, a), (e.v, b) is valid for some assignment {a, b} = {other.u,
// other.v}; validity means no self-loops, no duplicates of surviving edges,
// and the two new edges distinct from each other.
func swapCandidate(g *graph.TaskGraph, e, other stubEdge) (a, b int, ok bool) {
	for _, cand := range [2][2]int{{other.u, other.v}, {other.v, other.u}} {
		a, b = cand[0], cand[1]
		if e.u == a || e.v == b {
			continue
		}
		if sameEdge(e.u, a, e.v, b) {
			continue
		}
		// The old edge (other.u, other.v) is about to be removed, so a new
		// edge equal to it is fine; any other duplicate is not.
		dupU := g.HasEdge(e.u, a) && !sameEdge(e.u, a, other.u, other.v)
		dupV := g.HasEdge(e.v, b) && !sameEdge(e.v, b, other.u, other.v)
		if dupU || dupV {
			continue
		}
		// Exactly one of the new edges may coincide with the removed edge.
		if sameEdge(e.u, a, other.u, other.v) && sameEdge(e.v, b, other.u, other.v) {
			continue
		}
		return a, b, true
	}
	return 0, 0, false
}

func mustAdd(g *graph.TaskGraph, i, j int) {
	if err := g.AddEdge(i, j); err != nil {
		panic("taskgen: invariant violation adding checked edge: " + err.Error())
	}
}

func sameEdge(a1, b1, a2, b2 int) bool {
	return (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2)
}

// greedyFill adds `need` more edges, preferring endpoints with the smallest
// current degree so the degree spread stays minimal.
func greedyFill(g *graph.TaskGraph, need int, rng *rand.Rand) error {
	n := g.N()
	for added := 0; added < need; added++ {
		// Collect vertices ordered by degree with random tie-breaking.
		order := rng.Perm(n)
		found := false
		// Try endpoints in increasing degree order: O(n^2) worst case per
		// edge but the loop nearly always exits immediately.
		bestPairs := order
		for _, du := range degreeSorted(g, bestPairs) {
			u := du
			for _, v := range degreeSorted(g, order) {
				if u == v || g.HasEdge(u, v) {
					continue
				}
				if err := g.AddEdge(u, v); err != nil {
					return err
				}
				found = true
				break
			}
			if found {
				break
			}
		}
		if !found {
			return fmt.Errorf("taskgen: graph saturated after %d of %d fill edges", added, need)
		}
	}
	return nil
}

// degreeSorted returns the vertices of order sorted by ascending degree,
// stable with respect to the (random) input order.
func degreeSorted(g *graph.TaskGraph, order []int) []int {
	out := make([]int, len(order))
	copy(out, order)
	// Insertion sort by degree: n is small relative to cost elsewhere, and
	// stability preserves the random tie-break from order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && g.Degree(out[j]) < g.Degree(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
