package taskgen

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"crowdrank/internal/graph"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xabcdef))
}

func TestBudgetPairs(t *testing.T) {
	tests := []struct {
		name    string
		budget  float64
		w       int
		reward  float64
		want    int
		wantErr bool
	}{
		{"paperExample", 12.5, 10, 0.025, 50, false},
		{"floor", 0.99, 1, 0.5, 1, false},
		{"zeroBudget", 0, 5, 0.1, 0, false},
		{"negBudget", -1, 5, 0.1, 0, true},
		{"zeroWorkers", 10, 0, 0.1, 0, true},
		{"zeroReward", 10, 5, 0, 0, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := BudgetPairs(tc.budget, tc.w, tc.reward)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if err == nil && got != tc.want {
				t.Errorf("got %d, want %d", got, tc.want)
			}
		})
	}
}

func TestPairsForRatio(t *testing.T) {
	l, err := PairsForRatio(100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if l != 495 {
		t.Errorf("r=0.1, n=100: l = %d, want 495", l)
	}
	l, err = PairsForRatio(100, 1)
	if err != nil || l != 4950 {
		t.Errorf("r=1: l = %d, err=%v", l, err)
	}
	// Tiny ratios clamp to the spanning-path minimum n-1.
	l, err = PairsForRatio(100, 0.0001)
	if err != nil || l != 99 {
		t.Errorf("tiny ratio: l = %d, err=%v", l, err)
	}
	if _, err := PairsForRatio(1, 0.5); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := PairsForRatio(10, 0); err == nil {
		t.Error("r=0 should fail")
	}
	if _, err := PairsForRatio(10, 1.2); err == nil {
		t.Error("r>1 should fail")
	}
}

func TestInOutProbability(t *testing.T) {
	// Example 4.1: degree 1 -> 2/3, degree 2 -> 2/9.
	if got := InOutProbability(1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("d=1: %v", got)
	}
	if got := InOutProbability(2); math.Abs(got-2.0/9) > 1e-12 {
		t.Errorf("d=2: %v", got)
	}
	if got := InOutProbability(0); got != 2 {
		t.Errorf("d=0: %v (2/3^0 = 2)", got)
	}
	if got := InOutProbability(-1); got != 0 {
		t.Errorf("negative degree: %v", got)
	}
}

func TestHPLikelihoodLowerBound(t *testing.T) {
	// The bound increases with d_min and decreases as d_max grows away
	// from d_min, per Theorem 4.4's discussion.
	b1, err := HPLikelihoodLowerBound(10, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := HPLikelihoodLowerBound(10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b1 <= b2 {
		t.Errorf("bound should grow with regular degree: d=4 %v <= d=2 %v", b1, b2)
	}
	b3, err := HPLikelihoodLowerBound(10, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b3 > b2 {
		t.Errorf("widening the degree range should not raise the bound: %v > %v", b3, b2)
	}
	if b1 < 0 || b1 > 1 {
		t.Errorf("bound outside [0,1]: %v", b1)
	}
	if _, err := HPLikelihoodLowerBound(0, 1, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := HPLikelihoodLowerBound(10, 3, 2); err == nil {
		t.Error("dmax < dmin should fail")
	}
	if b, err := HPLikelihoodLowerBound(10, 0, 0); err != nil || b != 0 {
		t.Errorf("d=0 bound: %v, %v", b, err)
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := newRNG(1)
	if _, err := Generate(1, 0, rng); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := Generate(5, 3, rng); err == nil {
		t.Error("l < n-1 should fail")
	}
	if _, err := Generate(5, 11, rng); err == nil {
		t.Error("l > C(n,2) should fail")
	}
	if _, err := Generate(5, 4, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestGenerateStructure(t *testing.T) {
	tests := []struct {
		name string
		n, l int
	}{
		{"spanningPathOnly", 10, 9},
		{"sparse", 30, 60},
		{"ratio10pct", 100, 495},
		{"ratio50pct", 40, 390},
		{"complete", 12, 66},
		{"nearComplete", 12, 65},
		{"tiny", 2, 1},
		{"three", 3, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := Generate(tc.n, tc.l, newRNG(42))
			if err != nil {
				t.Fatal(err)
			}
			g := plan.Graph
			if g.M() != tc.l {
				t.Errorf("edges = %d, want %d", g.M(), tc.l)
			}
			if !g.Connected() {
				t.Error("task graph must be connected")
			}
			if !g.IsHamiltonianPath(plan.SeedPath) {
				t.Error("seed path must remain a Hamiltonian path")
			}
			if plan.TargetDegree != 2*tc.l/tc.n {
				t.Errorf("TargetDegree = %d", plan.TargetDegree)
			}
			if len(plan.Pairs()) != tc.l {
				t.Errorf("Pairs() length = %d", len(plan.Pairs()))
			}
		})
	}
}

func TestGenerateFairness(t *testing.T) {
	// With l comfortably above n-1, the degree spread must be tight
	// (Theorem 4.1's fairness): every degree within 1 of 2l/n in the
	// divisible cases we test, within 2 otherwise.
	tests := []struct {
		n, l, maxSpread int
	}{
		{20, 40, 2},  // target degree 4
		{50, 250, 2}, // target degree 10
		{100, 495, 2},
		{30, 435, 0}, // complete graph: exactly regular
	}
	for _, tc := range tests {
		plan, err := Generate(tc.n, tc.l, newRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		dmin, dmax := plan.Graph.MinMaxDegree()
		if dmax-dmin > tc.maxSpread {
			t.Errorf("n=%d l=%d: degree spread %d..%d exceeds %d",
				tc.n, tc.l, dmin, dmax, tc.maxSpread)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(30, 90, newRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(30, 90, newRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestGenerateQuickInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, lRaw uint16) bool {
		n := int(nRaw%60) + 2
		maxL := MaxPairs(n)
		span := maxL - (n - 1)
		l := n - 1
		if span > 0 {
			l += int(lRaw) % (span + 1)
		}
		plan, err := Generate(n, l, newRNG(seed))
		if err != nil {
			return false
		}
		g := plan.Graph
		if g.M() != l || !g.Connected() || !g.IsHamiltonianPath(plan.SeedPath) {
			return false
		}
		// Degrees must sum to 2l.
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDegreeSpreadQuick(t *testing.T) {
	// For budgets at least 2(n-1) (so the HP seed cannot force imbalance),
	// the spread should stay small.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 8
		l := 3 * n // target degree 6
		if l > MaxPairs(n) {
			l = MaxPairs(n)
		}
		plan, err := Generate(n, l, newRNG(seed))
		if err != nil {
			return false
		}
		dmin, dmax := plan.Graph.MinMaxDegree()
		return dmax-dmin <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxPairs(t *testing.T) {
	if MaxPairs(1) != 0 || MaxPairs(2) != 1 || MaxPairs(5) != 10 {
		t.Error("MaxPairs wrong")
	}
}

func TestPlanPairsAreCanonicalAndUnique(t *testing.T) {
	plan, err := Generate(25, 100, newRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.Pair]bool)
	for _, p := range plan.Pairs() {
		if p.I >= p.J {
			t.Fatalf("pair %v not canonical", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}
