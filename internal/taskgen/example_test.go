package taskgen_test

import (
	"fmt"
	"log"
	"math/rand/v2"

	"crowdrank/internal/taskgen"
)

// ExampleGenerate builds a fair task graph for a 10%-of-all-pairs budget.
func ExampleGenerate() {
	rng := rand.New(rand.NewPCG(1, 2))
	l, err := taskgen.PairsForRatio(40, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := taskgen.Generate(40, l, rng)
	if err != nil {
		log.Fatal(err)
	}
	dmin, dmax := plan.Graph.MinMaxDegree()
	fmt.Println("tasks:", plan.L)
	fmt.Println("connected:", plan.Graph.Connected())
	fmt.Println("contains its seed Hamiltonian path:", plan.Graph.IsHamiltonianPath(plan.SeedPath))
	fmt.Println("degree spread at most 1:", dmax-dmin <= 1)
	// Output:
	// tasks: 195
	// connected: true
	// contains its seed Hamiltonian path: true
	// degree spread at most 1: true
}

// ExampleInOutProbability reproduces the paper's Example 4.1.
func ExampleInOutProbability() {
	fmt.Printf("degree 1: %.4f\n", taskgen.InOutProbability(1))
	fmt.Printf("degree 2: %.4f\n", taskgen.InOutProbability(2))
	// Output:
	// degree 1: 0.6667
	// degree 2: 0.2222
}

// ExampleBudgetPairs shows the Section II budget arithmetic.
func ExampleBudgetPairs() {
	l, err := taskgen.BudgetPairs(12.5, 10, 0.025)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("affordable unique comparisons:", l)
	// Output:
	// affordable unique comparisons: 50
}
