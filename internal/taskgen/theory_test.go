package taskgen

import (
	"math"
	"testing"

	"crowdrank/internal/graph"
)

// enumerateInstances visits every of the 3^l possible preference-graph
// instances of a task graph (each edge independently oriented forward,
// backward, or both ways — the paper's three permutations) and calls visit
// with each instance.
func enumerateInstances(t *testing.T, tg *graph.TaskGraph, visit func(*graph.PreferenceGraph)) {
	t.Helper()
	edges := tg.Edges()
	l := len(edges)
	total := 1
	for i := 0; i < l; i++ {
		total *= 3
	}
	for code := 0; code < total; code++ {
		pg, err := graph.NewPreferenceGraph(tg.N())
		if err != nil {
			t.Fatal(err)
		}
		c := code
		for _, e := range edges {
			switch c % 3 {
			case 0: // forward only
				if err := pg.SetWeight(e.I, e.J, 1); err != nil {
					t.Fatal(err)
				}
			case 1: // backward only
				if err := pg.SetWeight(e.J, e.I, 1); err != nil {
					t.Fatal(err)
				}
			default: // both directions (inconsistent preferences)
				if err := pg.SetWeight(e.I, e.J, 0.5); err != nil {
					t.Fatal(err)
				}
				if err := pg.SetWeight(e.J, e.I, 0.5); err != nil {
					t.Fatal(err)
				}
			}
			c /= 3
		}
		visit(pg)
	}
}

// TestEquation2InOutProbabilityExact verifies Prob(v^IO) = 2/3^d by exact
// enumeration of all 3^l preference-graph instances, reproducing the
// paper's Example 4.1 (a path graph gives 2/9 for the middle vertex and
// 2/3 for the endpoints; a triangle gives 2/9 for all three).
func TestEquation2InOutProbabilityExact(t *testing.T) {
	builds := []struct {
		name  string
		build func(t *testing.T) *graph.TaskGraph
	}{
		{"pathOf3", func(t *testing.T) *graph.TaskGraph {
			g, err := graph.NewTaskGraph(3)
			if err != nil {
				t.Fatal(err)
			}
			mustEdge(t, g, 0, 1)
			mustEdge(t, g, 1, 2)
			return g
		}},
		{"triangle", func(t *testing.T) *graph.TaskGraph {
			g, err := graph.NewTaskGraph(3)
			if err != nil {
				t.Fatal(err)
			}
			mustEdge(t, g, 0, 1)
			mustEdge(t, g, 1, 2)
			mustEdge(t, g, 2, 0)
			return g
		}},
		{"star", func(t *testing.T) *graph.TaskGraph {
			g, err := graph.NewTaskGraph(4)
			if err != nil {
				t.Fatal(err)
			}
			mustEdge(t, g, 0, 1)
			mustEdge(t, g, 0, 2)
			mustEdge(t, g, 0, 3)
			return g
		}},
		{"square", func(t *testing.T) *graph.TaskGraph {
			g, err := graph.NewTaskGraph(4)
			if err != nil {
				t.Fatal(err)
			}
			mustEdge(t, g, 0, 1)
			mustEdge(t, g, 1, 2)
			mustEdge(t, g, 2, 3)
			mustEdge(t, g, 3, 0)
			return g
		}},
	}
	for _, tc := range builds {
		t.Run(tc.name, func(t *testing.T) {
			tg := tc.build(t)
			n := tg.N()
			counts := make([]int, n)
			total := 0
			enumerateInstances(t, tg, func(pg *graph.PreferenceGraph) {
				total++
				for v := 0; v < n; v++ {
					if pg.IsInNode(v) || pg.IsOutNode(v) {
						counts[v]++
					}
				}
			})
			for v := 0; v < n; v++ {
				want := InOutProbability(tg.Degree(v))
				got := float64(counts[v]) / float64(total)
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("vertex %d (degree %d): measured %v, Equation 2 gives %v",
						v, tg.Degree(v), got, want)
				}
			}
		})
	}
}

func mustEdge(t *testing.T, g *graph.TaskGraph, i, j int) {
	t.Helper()
	if err := g.AddEdge(i, j); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem42NoHPInTaskGraphMeansNoHPInClosure verifies Theorem 4.2 by
// enumeration: a disconnected task graph (which has no HP) never yields a
// preference-graph closure with an HP.
func TestTheorem42NoHPInTaskGraphMeansNoHPInClosure(t *testing.T) {
	// Two components: {0,1} and {2,3}.
	tg, err := graph.NewTaskGraph(4)
	if err != nil {
		t.Fatal(err)
	}
	mustEdge(t, tg, 0, 1)
	mustEdge(t, tg, 2, 3)
	enumerateInstances(t, tg, func(pg *graph.PreferenceGraph) {
		if pg.HasHamiltonianPathReachability() {
			t.Fatal("disconnected task graph produced an HP in the closure")
		}
	})
}

// TestTheorem43TwoInNodesMeansNoHP verifies Theorem 4.3 by enumeration: any
// instance whose closure has two or more in-nodes (or out-nodes) has no HP
// in its reachability closure.
func TestTheorem43TwoInNodesMeansNoHP(t *testing.T) {
	tg, err := graph.NewTaskGraph(4)
	if err != nil {
		t.Fatal(err)
	}
	mustEdge(t, tg, 0, 1)
	mustEdge(t, tg, 1, 2)
	mustEdge(t, tg, 2, 3)
	mustEdge(t, tg, 3, 0)
	checked := 0
	enumerateInstances(t, tg, func(pg *graph.PreferenceGraph) {
		inNodes, outNodes := pg.InOutNodes()
		if len(inNodes) >= 2 || len(outNodes) >= 2 {
			checked++
			if pg.HasHamiltonianPathReachability() {
				t.Fatalf("instance with %d in-nodes / %d out-nodes has an HP",
					len(inNodes), len(outNodes))
			}
		}
	})
	if checked == 0 {
		t.Fatal("no instance exercised the theorem precondition")
	}
}

// TestTheorem44BoundHolds verifies that the Theorem 4.4 lower bound Pr_l
// never exceeds the exact enumerated probability that the closure has at
// most one in-node and at most one out-node.
func TestTheorem44BoundHolds(t *testing.T) {
	// A 5-cycle: 3^5 = 243 instances, degree 2 everywhere.
	tg, err := graph.NewTaskGraph(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustEdge(t, tg, i, (i+1)%5)
	}
	good, total := 0, 0
	enumerateInstances(t, tg, func(pg *graph.PreferenceGraph) {
		total++
		inNodes, outNodes := pg.InOutNodes()
		if len(inNodes) <= 1 && len(outNodes) <= 1 {
			good++
		}
	})
	exact := float64(good) / float64(total)
	dmin, dmax := tg.MinMaxDegree()
	bound, err := HPLikelihoodLowerBound(tg.N(), dmin, dmax)
	if err != nil {
		t.Fatal(err)
	}
	if bound > exact+1e-12 {
		t.Errorf("Theorem 4.4 bound %v exceeds exact probability %v", bound, exact)
	}
	if bound <= 0 {
		t.Errorf("bound should be positive for a 2-regular graph, got %v", bound)
	}
}

// TestSeededHPGuaranteesTaskGraphHP verifies the necessary condition from
// Theorem 4.2 constructively: every generated plan's task graph contains a
// Hamiltonian path (the seed path).
func TestSeededHPGuaranteesTaskGraphHP(t *testing.T) {
	for _, n := range []int{5, 17, 40} {
		plan, err := Generate(n, MaxPairs(n)/3+n, newRNG(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Graph.IsHamiltonianPath(plan.SeedPath) {
			t.Fatalf("n=%d: seed path is not an HP of the task graph", n)
		}
	}
}
