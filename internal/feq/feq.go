// Package feq centralizes floating-point comparisons. Raw == / != between
// floats is banned by crowdlint (check "floatcmp") because the pipeline's
// guarantees are stated with tolerances — w_ij + w_ji = 1 holds only to
// rounding — and an exact comparison that happens to pass today silently
// breaks when an optimization reorders the arithmetic. Every comparison the
// codebase needs lives here instead, each documented as either
// tolerance-based or a deliberate exact sentinel check, so the intent is
// auditable in one place. crowdlint exempts this package.
package feq

import "math"

// Tol is the default absolute tolerance, matching the invariant layer's
// tournament-normalization tolerance (w_ij + w_ji = 1 ± Tol).
const Tol = 1e-9

// Eq reports whether a and b are equal within the default tolerance Tol.
func Eq(a, b float64) bool {
	return Close(a, b, Tol)
}

// Close reports whether |a - b| <= tol. NaNs are never close to anything;
// equal infinities are (the exact-equality short-circuit avoids the
// Inf - Inf = NaN trap).
func Close(a, b, tol float64) bool {
	return a == b || math.Abs(a-b) <= tol
}

// Zero reports whether x is exactly 0. Exact by design: the preference
// graph uses 0 as the structural "edge absent" sentinel, which is assigned
// (never computed), so a tolerance would misread tiny real weights as
// missing edges.
func Zero(x float64) bool {
	return x == 0
}

// One reports whether x is exactly 1. Exact by design: weight-1 edges are
// the unanimous "1-edges" of Section V-B, assigned exactly 1 by truth
// discovery and eliminated by smoothing; a tolerance would smooth
// legitimately near-unanimous edges twice.
func One(x float64) bool {
	return x == 1
}
