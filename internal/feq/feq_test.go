package feq

import (
	"math"
	"testing"
)

func TestEqAndClose(t *testing.T) {
	tests := []struct {
		name   string
		a, b   float64
		tol    float64
		close_ bool
	}{
		{"identical", 0.5, 0.5, Tol, true},
		{"within default tol", 1.0, 1.0 + 1e-10, Tol, true},
		{"outside default tol", 1.0, 1.0 + 1e-8, Tol, false},
		{"negative within", -0.25, -0.25 - 1e-12, Tol, true},
		{"wide tolerance", 0.4, 0.6, 0.25, true},
		{"nan left", math.NaN(), 0, Tol, false},
		{"nan both", math.NaN(), math.NaN(), Tol, false},
		{"inf vs inf", math.Inf(1), math.Inf(1), Tol, true},
		{"inf vs finite", math.Inf(1), 1e300, Tol, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Close(tt.a, tt.b, tt.tol); got != tt.close_ {
				t.Fatalf("Close(%v, %v, %v) = %v, want %v", tt.a, tt.b, tt.tol, got, tt.close_)
			}
		})
	}
	if !Eq(1, 1+1e-12) {
		t.Fatal("Eq should accept a 1e-12 gap under the default tolerance")
	}
	if Eq(1, 1+1e-6) {
		t.Fatal("Eq should reject a 1e-6 gap under the default tolerance")
	}
}

func TestExactSentinels(t *testing.T) {
	if !Zero(0) || Zero(1e-300) || Zero(math.Copysign(0, -1)) == false {
		t.Fatal("Zero must match exactly 0 (either sign) and nothing else")
	}
	if !One(1) || One(1-1e-16) == true && 1-1e-16 != 1 {
		t.Fatal("One must match exactly 1")
	}
	if One(0.9999999) || One(math.NaN()) {
		t.Fatal("One matched a non-1 value")
	}
	if Zero(math.NaN()) {
		t.Fatal("Zero matched NaN")
	}
}
