// Package plot renders simple line charts as self-contained SVG using only
// the standard library, so the experiment harness's exported series
// (cmd/experiments -tsv) can be turned into figures without any external
// tooling. It supports multiple named series, automatic axis scaling with
// round tick values, and a legend.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"

	"crowdrank/internal/feq"
)

// Series is one named polyline.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart describes a figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the SVG canvas size in pixels; zero values get
	// defaults of 720x480.
	Width, Height int
}

// palette holds visually distinct series colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

const (
	marginLeft   = 70.0
	marginRight  = 24.0
	marginTop    = 48.0
	marginBottom = 56.0
)

// WriteSVG renders the chart. Every series must have matching X/Y lengths
// and at least one point overall.
func (c *Chart) WriteSVG(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 480
	}

	var xs, ys []float64
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
		}
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	if len(xs) == 0 {
		return fmt.Errorf("plot: no data points")
	}
	xMin, xMax := minMax(xs)
	yMin, yMax := minMax(ys)
	xTicks := niceTicks(xMin, xMax, 6)
	yTicks := niceTicks(yMin, yMax, 6)
	xMin, xMax = xTicks[0], xTicks[len(xTicks)-1]
	yMin, yMax = yTicks[0], yTicks[len(yTicks)-1]

	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom
	px := func(x float64) float64 {
		if feq.Eq(xMax, xMin) {
			return marginLeft + plotW/2
		}
		return marginLeft + (x-xMin)/(xMax-xMin)*plotW
	}
	py := func(y float64) float64 {
		if feq.Eq(yMax, yMin) {
			return marginTop + plotH/2
		}
		return marginTop + plotH - (y-yMin)/(yMax-yMin)*plotH
	}

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%g" y="24" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(c.Title))

	// Grid and ticks.
	for _, tx := range xTicks {
		x := px(tx)
		fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, marginTop+plotH+18, formatTick(tx))
	}
	for _, ty := range yTicks {
		y := py(ty)
		fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-8, y+4, formatTick(ty))
	}
	// Axes.
	fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	// Axis labels.
	fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, float64(height)-12, escape(c.XLabel))
	fmt.Fprintf(w, `<text x="16" y="%g" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Series polylines with point markers, sorted by X per series.
	for idx, s := range c.Series {
		color := palette[idx%len(palette)]
		points := sortedPoints(s)
		path := ""
		for i, pt := range points {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			path += fmt.Sprintf("%s%.2f %.2f ", cmd, px(pt[0]), py(pt[1]))
		}
		fmt.Fprintf(w, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", path, color)
		for _, pt := range points {
			fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="3" fill="%s"/>`+"\n", px(pt[0]), py(pt[1]), color)
		}
	}

	// Legend.
	legendY := marginTop + 6
	for idx, s := range c.Series {
		color := palette[idx%len(palette)]
		y := legendY + float64(idx)*18
		x := marginLeft + plotW - 150
		fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			x, y, x+22, y, color)
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			x+28, y+4, escape(s.Name))
	}

	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

func sortedPoints(s Series) [][2]float64 {
	points := make([][2]float64, len(s.X))
	for i := range s.X {
		points[i] = [2]float64{s.X[i], s.Y[i]}
	}
	sort.Slice(points, func(a, b int) bool { return points[a][0] < points[b][0] })
	return points
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// niceTicks returns ~count round tick values covering [lo, hi].
func niceTicks(lo, hi float64, count int) []float64 {
	if feq.Eq(lo, hi) {
		return []float64{lo, lo + 1}
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(count))))
	for span/step > float64(count)*2 {
		step *= 2
	}
	for span/step > float64(count) {
		step *= 2.5
		if span/step <= float64(count) {
			break
		}
		step *= 2
	}
	start := math.Floor(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/2; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

func formatTick(v float64) string {
	if feq.Eq(v, math.Trunc(v)) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

func escape(s string) string {
	out := ""
	for _, r := range s {
		switch r {
		case '<':
			out += "&lt;"
		case '>':
			out += "&gt;"
		case '&':
			out += "&amp;"
		default:
			out += string(r)
		}
	}
	return out
}
