package plot

import (
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "accuracy vs n",
		XLabel: "objects",
		YLabel: "accuracy",
		Series: []Series{
			{Name: "gaussian", X: []float64{100, 200, 300}, Y: []float64{0.9, 0.93, 0.95}},
			{Name: "uniform", X: []float64{100, 200, 300}, Y: []float64{0.88, 0.92, 0.94}},
		},
	}
}

func TestWriteSVGStructure(t *testing.T) {
	var sb strings.Builder
	if err := sampleChart().WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>",
		"accuracy vs n", "objects", ">accuracy<",
		"gaussian", "uniform",
		"<path", "<circle",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<path") != 2 {
		t.Errorf("want 2 series paths, got %d", strings.Count(out, "<path"))
	}
	if strings.Count(out, "<circle") != 6 {
		t.Errorf("want 6 point markers, got %d", strings.Count(out, "<circle"))
	}
}

func TestWriteSVGValidation(t *testing.T) {
	bad := &Chart{Series: []Series{{Name: "x", X: []float64{1, 2}, Y: []float64{1}}}}
	var sb strings.Builder
	if err := bad.WriteSVG(&sb); err == nil {
		t.Error("mismatched series lengths should fail")
	}
	empty := &Chart{}
	if err := empty.WriteSVG(&sb); err == nil {
		t.Error("empty chart should fail")
	}
}

func TestWriteSVGEscapesMarkup(t *testing.T) {
	c := sampleChart()
	c.Title = "a<b & c>d"
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a&lt;b &amp; c&gt;d") {
		t.Error("markup not escaped in title")
	}
	if strings.Contains(out, "a<b") {
		t.Error("raw markup leaked into SVG")
	}
}

func TestNiceTicksCoverRange(t *testing.T) {
	cases := [][2]float64{{0, 1}, {0.1, 0.97}, {100, 1000}, {-5, 5}, {3, 3}}
	for _, c := range cases {
		ticks := niceTicks(c[0], c[1], 6)
		if len(ticks) < 2 {
			t.Fatalf("range %v: too few ticks %v", c, ticks)
		}
		if ticks[0] > c[0] || ticks[len(ticks)-1] < c[1] {
			t.Errorf("range %v not covered by ticks %v", c, ticks)
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				t.Errorf("ticks not increasing: %v", ticks)
			}
		}
	}
}

func TestWriteSVGSingleFlatSeries(t *testing.T) {
	// Degenerate: one point, flat ranges must not divide by zero.
	c := &Chart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{2}}}}
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<circle") {
		t.Error("single point not rendered")
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(100) != "100" {
		t.Errorf("formatTick(100) = %q", formatTick(100))
	}
	if formatTick(0.25) != "0.25" {
		t.Errorf("formatTick(0.25) = %q", formatTick(0.25))
	}
}
