package des

import (
	"math/rand/v2"
	"testing"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/graph"
	"crowdrank/internal/platform"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 71)) }

// fixedOracle prefers the lower object id, with a fixed pool size.
type fixedOracle struct{ workers int }

func (o fixedOracle) Answer(_, i, j int) bool { return i < j }
func (o fixedOracle) Workers() int            { return o.workers }

func hitsFor(pairs ...graph.Pair) []platform.HIT {
	hits := make([]platform.HIT, len(pairs))
	for i, p := range pairs {
		hits[i] = platform.HIT{ID: i, Pairs: []graph.Pair{p}}
	}
	return hits
}

func deterministicModel() WorkerModel {
	return WorkerModel{MeanService: 10 * time.Second, ServiceJitter: 0, ReactionDelay: 0}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultWorkerModel(), newRNG(1)); err == nil {
		t.Error("nil oracle should fail")
	}
	if _, err := New(fixedOracle{workers: 2}, DefaultWorkerModel(), nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := New(fixedOracle{workers: 0}, DefaultWorkerModel(), newRNG(1)); err == nil {
		t.Error("empty pool should fail")
	}
	bad := DefaultWorkerModel()
	bad.MeanService = 0
	if _, err := New(fixedOracle{workers: 2}, bad, newRNG(1)); err == nil {
		t.Error("zero service time should fail")
	}
	bad = DefaultWorkerModel()
	bad.ServiceJitter = -1
	if _, err := New(fixedOracle{workers: 2}, bad, newRNG(1)); err == nil {
		t.Error("negative jitter should fail")
	}
	bad = DefaultWorkerModel()
	bad.ReactionDelay = -time.Second
	if _, err := New(fixedOracle{workers: 2}, bad, newRNG(1)); err == nil {
		t.Error("negative reaction delay should fail")
	}
}

func TestRunBatchParallelMakespan(t *testing.T) {
	// 4 HITs, 4 workers, w=1, deterministic 10 s service: all run in
	// parallel, makespan exactly 10 s.
	m, err := New(fixedOracle{workers: 4}, deterministicModel(), newRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	hits := hitsFor(
		graph.Pair{I: 0, J: 1}, graph.Pair{I: 1, J: 2},
		graph.Pair{I: 2, J: 3}, graph.Pair{I: 0, J: 3},
	)
	res, err := m.RunBatch(hits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 10*time.Second {
		t.Errorf("makespan = %v, want 10s", res.Makespan)
	}
	if len(res.Votes) != 4 {
		t.Errorf("votes = %d", len(res.Votes))
	}
	for _, v := range res.Votes {
		if !v.PrefersI {
			t.Errorf("oracle answer lost: %+v", v)
		}
	}
}

func TestRunBatchQueueingMakespan(t *testing.T) {
	// 6 HITs, 2 workers, w=1: 3 sequential tasks per worker -> 30 s.
	m, err := New(fixedOracle{workers: 2}, deterministicModel(), newRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	var pairs []graph.Pair
	for i := 0; i < 6; i++ {
		pairs = append(pairs, graph.Pair{I: i, J: i + 1})
	}
	res, err := m.RunBatch(hitsFor(pairs...), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 30*time.Second {
		t.Errorf("makespan = %v, want 30s", res.Makespan)
	}
	// Load should split evenly: 3 answers each.
	for k, c := range res.WorkerAnswers {
		if c != 3 {
			t.Errorf("worker %d answered %d, want 3", k, c)
		}
	}
}

func TestRunBatchReplication(t *testing.T) {
	// One HIT answered by w=3 of 3 workers.
	m, err := New(fixedOracle{workers: 3}, deterministicModel(), newRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunBatch(hitsFor(graph.Pair{I: 0, J: 1}), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Votes) != 3 {
		t.Errorf("votes = %d, want 3", len(res.Votes))
	}
	seen := map[int]bool{}
	for _, v := range res.Votes {
		if seen[v.Worker] {
			t.Error("same worker answered twice")
		}
		seen[v.Worker] = true
	}
	if _, err := m.RunBatch(hitsFor(graph.Pair{I: 0, J: 1}), 4); err == nil {
		t.Error("w > pool should fail")
	}
}

func TestInteractiveSlowerThanBatch(t *testing.T) {
	// Same budget (30 comparisons, w=2) with a 10-worker pool: the
	// one-at-a-time protocol must have a much larger makespan than the
	// single batch.
	model := DefaultWorkerModel()
	pairs := make([]graph.Pair, 30)
	for i := range pairs {
		pairs[i] = graph.Pair{I: i % 7, J: i%7 + 1}
	}

	batchM, err := New(fixedOracle{workers: 10}, model, newRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := batchM.RunBatch(hitsFor(pairs...), 2)
	if err != nil {
		t.Fatal(err)
	}

	interM, err := New(fixedOracle{workers: 10}, model, newRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	inter, err := interM.RunInteractive(2, len(pairs), func(_ []crowd.Vote) (graph.Pair, bool) {
		if next >= len(pairs) {
			return graph.Pair{}, false
		}
		p := pairs[next]
		next++
		return p, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(inter.Votes) != len(batch.Votes) {
		t.Fatalf("vote counts differ: %d vs %d", len(inter.Votes), len(batch.Votes))
	}
	if inter.Makespan < 5*batch.Makespan {
		t.Errorf("interactive makespan %v not clearly above batch %v", inter.Makespan, batch.Makespan)
	}
}

func TestInteractiveSelectorStops(t *testing.T) {
	m, err := New(fixedOracle{workers: 2}, deterministicModel(), newRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	res, err := m.RunInteractive(1, 100, func(_ []crowd.Vote) (graph.Pair, bool) {
		calls++
		if calls > 3 {
			return graph.Pair{}, false
		}
		return graph.Pair{I: 0, J: 1}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Votes) != 3 {
		t.Errorf("votes = %d, want 3", len(res.Votes))
	}
	if _, err := m.RunInteractive(1, 0, nil); err == nil {
		t.Error("invalid interactive params should fail")
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	run := func() *BatchResult {
		m, err := New(fixedOracle{workers: 5}, DefaultWorkerModel(), newRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		pairs := make([]graph.Pair, 20)
		for i := range pairs {
			pairs[i] = graph.Pair{I: i % 4, J: i%4 + 1}
		}
		res, err := m.RunBatch(hitsFor(pairs...), 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || len(a.Votes) != len(b.Votes) {
		t.Fatal("simulation not deterministic under fixed seed")
	}
}

func TestClockAdvancesAcrossBatches(t *testing.T) {
	m, err := New(fixedOracle{workers: 1}, deterministicModel(), newRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunBatch(hitsFor(graph.Pair{I: 0, J: 1}), 1); err != nil {
		t.Fatal(err)
	}
	first := m.Now()
	if first != 10*time.Second {
		t.Errorf("clock = %v after first batch", first)
	}
	if _, err := m.RunBatch(hitsFor(graph.Pair{I: 1, J: 2}), 1); err != nil {
		t.Fatal(err)
	}
	if m.Now() != 20*time.Second {
		t.Errorf("clock = %v after second batch", m.Now())
	}
}
