package des

import (
	"container/heap"
	"fmt"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/faults"
	"crowdrank/internal/feq"
	"crowdrank/internal/graph"
	"crowdrank/internal/platform"
)

// CollectParams tunes the fault-tolerant collection of RunBatchFaulty: how
// long the requester waits for each posting wave, how many repair waves may
// follow, and how much money is reserved for them.
type CollectParams struct {
	// Deadline is the per-wave collection deadline measured from the wave's
	// posting time; answers arriving later are discarded and their slots
	// become repost candidates. 0 means wait forever (a single wave, no
	// reposts — stragglers only stretch the makespan).
	Deadline time.Duration
	// MaxReposts bounds how many repair waves follow the original posting;
	// 0 disables reposting.
	MaxReposts int
	// RepairBudget is the money reserved for repair waves, in the same
	// reward units as Reward. Each repost escrows pairs*Reward when posted;
	// slots that no longer fit stay lost. Negative means unlimited.
	RepairBudget float64
	// Reward is the payment per comparison per worker; 0 means 1 (the
	// simulator's unit reward).
	Reward float64
}

func (p CollectParams) validate() error {
	if p.Deadline < 0 {
		return fmt.Errorf("des: negative deadline %v", p.Deadline)
	}
	if p.MaxReposts < 0 {
		return fmt.Errorf("des: negative MaxReposts %d", p.MaxReposts)
	}
	if p.MaxReposts > 0 && p.Deadline == 0 {
		return fmt.Errorf("des: reposting requires a positive deadline (the requester must detect missing answers)")
	}
	return nil
}

func (p CollectParams) reward() float64 {
	if feq.Zero(p.Reward) {
		return 1
	}
	return p.Reward
}

// CollectStats quantifies one fault-tolerant collection round: what was
// planned, what arrived, what was lost to each failure mode, and what the
// repair waves recovered and cost. All answer counts are in comparisons
// (votes), not HITs.
type CollectStats struct {
	// PlannedAnswers = comparisons x workers-per-HIT of the original post.
	PlannedAnswers int
	// Delivered counts answers collected in time across all waves;
	// Repaired is the subset recovered by repair waves (wave >= 1).
	Delivered int
	Repaired  int
	// DroppedAttempts / LateAttempts / PartialLostPairs count per-attempt
	// losses: a slot that drops twice counts twice.
	DroppedAttempts  int
	LateAttempts     int
	PartialLostPairs int
	// MalformedVotes and DuplicateVotes count delivered-but-garbage
	// submissions (included in Votes; sanitization happens downstream).
	MalformedVotes int
	DuplicateVotes int
	// Reposts counts slots sent back to the marketplace; Waves counts
	// postings including the first.
	Reposts int
	Waves   int
	// Spent is the escrowed cost of the original posting; RepairSpent the
	// escrowed cost of reposts.
	Spent       float64
	RepairSpent float64
	// Makespan is the virtual time from first posting until the requester
	// stops waiting (last deadline used, or last answer when everything
	// arrived early).
	Makespan time.Duration
}

// Unrecovered returns the planned answers that never arrived.
func (s CollectStats) Unrecovered() int { return s.PlannedAnswers - s.Delivered }

// DeliveryRate returns Delivered / PlannedAnswers in [0, 1].
func (s CollectStats) DeliveryRate() float64 {
	if s.PlannedAnswers == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.PlannedAnswers)
}

// FaultyBatchResult is the outcome of RunBatchFaulty.
type FaultyBatchResult struct {
	// Votes holds every delivered submission in arrival order, including
	// malformed and duplicate ones — downstream sanitization is part of
	// what the fault layer exercises.
	Votes []crowd.Vote
	// WorkerAnswers counts delivered comparisons per worker.
	WorkerAnswers []int
	Stats         CollectStats
}

// slot is one (HIT, worker-assignment) unit of pending work. Reposts
// re-enqueue the slot (possibly with only the missing pairs) with a bumped
// attempt so the injector draws fresh outcomes.
type slot struct {
	hit        platform.HIT
	attempt    int
	lastWorker int // worker who failed the previous attempt (-1 initially)
}

// RunBatchFaulty posts every HIT to w distinct workers like RunBatch, but
// passes every assignment through the fault injector: assignments may be
// abandoned, straggle past the deadline, or come back partial, and
// delivered answers may be malformed or duplicated. At each deadline the
// requester reposts the missing slots (bounded by MaxReposts and
// RepairBudget) to the earliest-available workers, excluding the worker who
// just failed the slot. The returned votes are raw — malformed and
// duplicate submissions included — so the downstream sanitization path is
// exercised end to end.
func (m *Marketplace) RunBatchFaulty(hits []platform.HIT, w int, inj *faults.Injector, p CollectParams) (*FaultyBatchResult, error) {
	if inj == nil {
		return nil, fmt.Errorf("des: nil fault injector (use RunBatch for fault-free rounds)")
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	totalWorkers := m.oracle.Workers()
	if w < 1 || w > totalWorkers {
		return nil, fmt.Errorf("des: w=%d outside [1,%d]", w, totalWorkers)
	}

	postTime := m.clock
	reward := p.reward()
	stats := CollectStats{}
	answers := make([]int, totalWorkers)
	var votes []crowd.Vote

	// Original posting: w slots per HIT.
	var pending []slot
	for _, hit := range hits {
		stats.PlannedAnswers += len(hit.Pairs) * w
		for s := 0; s < w; s++ {
			pending = append(pending, slot{hit: hit, lastWorker: -1})
		}
	}
	stats.Spent = float64(stats.PlannedAnswers) * reward

	waveStart := postTime
	stragglerFactor := inj.StragglerFactor()
	// A worker answers each comparison at most once, across waves: workers
	// who already delivered a HIT must not receive its reposted slots.
	answeredByHIT := make(map[int][]int)
	for wave := 0; len(pending) > 0 && wave <= p.MaxReposts; wave++ {
		stats.Waves++
		// Within one wave the slots of one HIT must go to distinct workers;
		// the worker who failed the slot last wave is also excluded.
		pickedByHIT := make(map[int][]int)
		var events assignmentHeap
		type outcomeRec struct {
			slot    slot
			worker  int
			kept    int
			outcome faults.Outcome
			finish  time.Duration
			onTime  bool
		}
		var recs []outcomeRec
		recBySeq := make(map[int]int)
		seq := 0
		allOnTime := true

		for _, sl := range pending {
			exclude := append([]int(nil), pickedByHIT[sl.hit.ID]...)
			exclude = append(exclude, answeredByHIT[sl.hit.ID]...)
			if sl.lastWorker >= 0 {
				exclude = append(exclude, sl.lastWorker)
			}
			worker := m.pickWorker(exclude)
			pickedByHIT[sl.hit.ID] = append(pickedByHIT[sl.hit.ID], worker)

			outcome := inj.Outcome(sl.hit.ID, worker, sl.attempt)
			if outcome == faults.Dropped {
				// Claimed, never returned: the worker sits on it without
				// working, so their availability is unchanged.
				stats.DroppedAttempts += len(sl.hit.Pairs)
				recs = append(recs, outcomeRec{slot: sl, worker: worker, outcome: outcome})
				allOnTime = false
				continue
			}
			start := m.busyUntil[worker]
			if start < waveStart {
				start = waveStart
			}
			start += m.reactionTime()
			kept := inj.KeptPairs(sl.hit.ID, worker, sl.attempt, len(sl.hit.Pairs))
			finish := start
			for range sl.hit.Pairs[:kept] {
				service := m.serviceTime()
				if outcome == faults.Straggled {
					service = time.Duration(float64(service) * stragglerFactor)
				}
				finish += service
			}
			m.busyUntil[worker] = finish
			onTime := p.Deadline == 0 || finish <= waveStart+p.Deadline
			if !onTime {
				allOnTime = false
			}
			if kept < len(sl.hit.Pairs) {
				allOnTime = false
			}
			recs = append(recs, outcomeRec{
				slot: sl, worker: worker, kept: kept, outcome: outcome, finish: finish, onTime: onTime,
			})
			if onTime {
				recBySeq[seq] = len(recs) - 1
				heap.Push(&events, assignment{finish: finish, hit: sl.hit, worker: worker, seq: seq})
				seq++
			}
		}

		// Collect delivered answers in arrival order; the heap's seq keys
		// back into recs for the kept count.
		lastFinish := waveStart
		for events.Len() > 0 {
			ev := heap.Pop(&events).(assignment)
			r := recs[recBySeq[ev.seq]]
			answeredByHIT[ev.hit.ID] = append(answeredByHIT[ev.hit.ID], ev.worker)
			if ev.finish > lastFinish {
				lastFinish = ev.finish
			}
			for k, pr := range ev.hit.Pairs[:r.kept] {
				v := crowd.Vote{
					Worker:   ev.worker,
					I:        pr.I,
					J:        pr.J,
					PrefersI: m.oracle.Answer(ev.worker, pr.I, pr.J),
				}
				mangled, corrupted, duplicated := inj.Mangle(ev.hit.ID, ev.worker, r.slot.attempt, k, v)
				if corrupted {
					stats.MalformedVotes++
				}
				if duplicated {
					stats.DuplicateVotes += len(mangled) - 1
				}
				votes = append(votes, mangled...)
				answers[ev.worker]++
				stats.Delivered++
				if wave > 0 {
					stats.Repaired++
				}
			}
		}

		// Close the wave: early if everything arrived, at the deadline
		// otherwise (the requester must wait it out to detect the missing).
		waveEnd := lastFinish
		if p.Deadline > 0 && !allOnTime {
			waveEnd = waveStart + p.Deadline
		}
		if waveEnd > m.clock {
			m.clock = waveEnd
		}

		// Build the next wave's repost list from this wave's failures.
		var next []slot
		repairRemaining := p.RepairBudget - stats.RepairSpent
		for _, r := range recs {
			var missing []int // indices into r.slot.hit.Pairs still unanswered
			switch {
			case r.outcome == faults.Dropped:
				missing = allPairIndices(len(r.slot.hit.Pairs))
			case !r.onTime:
				stats.LateAttempts += len(r.slot.hit.Pairs)
				missing = allPairIndices(len(r.slot.hit.Pairs))
			case r.kept < len(r.slot.hit.Pairs):
				stats.PartialLostPairs += len(r.slot.hit.Pairs) - r.kept
				for k := r.kept; k < len(r.slot.hit.Pairs); k++ {
					missing = append(missing, k)
				}
			default:
				continue
			}
			if wave == p.MaxReposts {
				continue // no further waves; stays lost
			}
			cost := float64(len(missing)) * reward
			if p.RepairBudget >= 0 && cost > repairRemaining+1e-9 {
				continue // repair budget exhausted; stays lost
			}
			repairRemaining -= cost
			stats.RepairSpent += cost
			stats.Reposts++
			remainder := platform.HIT{ID: r.slot.hit.ID, Pairs: pairSubset(r.slot.hit.Pairs, missing)}
			next = append(next, slot{hit: remainder, attempt: r.slot.attempt + 1, lastWorker: r.worker})
		}
		pending = next
		waveStart = m.clock
	}

	stats.Makespan = m.clock - postTime
	return &FaultyBatchResult{Votes: votes, WorkerAnswers: answers, Stats: stats}, nil
}

// pickWorker returns the eligible worker who can start the earliest,
// breaking ties by shuffled order for fairness. exclude lists ineligible
// workers; when excluding everyone would leave nobody, the exclusion is
// ignored (a pool of one must serve).
func (m *Marketplace) pickWorker(exclude []int) int {
	banned := make(map[int]bool, len(exclude))
	for _, e := range exclude {
		banned[e] = true
	}
	total := m.oracle.Workers()
	if len(banned) >= total {
		banned = nil
	}
	order := m.rng.Perm(total)
	best := -1
	for _, k := range order {
		if banned[k] {
			continue
		}
		if best < 0 || m.busyUntil[k] < m.busyUntil[best] {
			best = k
		}
	}
	return best
}

func allPairIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func pairSubset(pairs []graph.Pair, idx []int) []graph.Pair {
	out := make([]graph.Pair, 0, len(idx))
	for _, k := range idx {
		out = append(out, pairs[k])
	}
	return out
}
