// Package des is a deterministic discrete-event simulator of a
// crowdsourcing marketplace. It models what the paper's Section II setting
// costs in *wall-clock marketplace time*: posted HITs wait for eligible
// workers, workers take stochastic service time per comparison, and the
// requester either posts everything at once (the paper's non-interactive
// round) or one comparison at a time, waiting for answers before choosing
// the next (the interactive protocols the paper compares against).
//
// The simulator uses a virtual clock and an event heap — no goroutines and
// no real sleeping — so makespan experiments are exact, deterministic, and
// fast. The makespan gap between the two protocols is the quantitative
// form of the paper's "higher accuracy and faster rank inference than the
// interactive crowdsourcing setting" claim.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/feq"
	"crowdrank/internal/graph"
	"crowdrank/internal/platform"
)

// WorkerModel describes the simulated workers' timing behavior.
type WorkerModel struct {
	// MeanService is the average time a worker spends answering one
	// pairwise comparison.
	MeanService time.Duration
	// ServiceJitter scales the lognormal spread of service times; 0 makes
	// every answer take exactly MeanService.
	ServiceJitter float64
	// ReactionDelay is the average lag between a HIT appearing and an idle
	// worker claiming it (marketplace discovery latency). Exponentially
	// distributed.
	ReactionDelay time.Duration
}

// DefaultWorkerModel mirrors plausible AMT micro-task timing: ~20 s per
// comparison with moderate spread, ~30 s to discover a newly posted task.
func DefaultWorkerModel() WorkerModel {
	return WorkerModel{
		MeanService:   20 * time.Second,
		ServiceJitter: 0.5,
		ReactionDelay: 30 * time.Second,
	}
}

func (m WorkerModel) validate() error {
	if m.MeanService <= 0 {
		return fmt.Errorf("des: MeanService must be positive, got %v", m.MeanService)
	}
	if m.ServiceJitter < 0 {
		return fmt.Errorf("des: negative ServiceJitter %v", m.ServiceJitter)
	}
	if m.ReactionDelay < 0 {
		return fmt.Errorf("des: negative ReactionDelay %v", m.ReactionDelay)
	}
	return nil
}

// Marketplace is one simulation instance over a fixed worker pool.
type Marketplace struct {
	oracle platform.Oracle
	model  WorkerModel
	rng    *rand.Rand

	clock time.Duration
	// busyUntil[k] is the virtual time worker k finishes their current
	// assignment.
	busyUntil []time.Duration
}

// New creates a marketplace over the oracle's worker pool.
func New(oracle platform.Oracle, model WorkerModel, rng *rand.Rand) (*Marketplace, error) {
	if oracle == nil {
		return nil, fmt.Errorf("des: nil oracle")
	}
	if rng == nil {
		return nil, fmt.Errorf("des: nil random source")
	}
	if err := model.validate(); err != nil {
		return nil, err
	}
	if oracle.Workers() < 1 {
		return nil, fmt.Errorf("des: oracle has no workers")
	}
	return &Marketplace{
		oracle:    oracle,
		model:     model,
		rng:       rng,
		busyUntil: make([]time.Duration, oracle.Workers()),
	}, nil
}

// Now returns the current virtual time.
func (m *Marketplace) Now() time.Duration { return m.clock }

// serviceTime draws one lognormal-ish service duration.
func (m *Marketplace) serviceTime() time.Duration {
	if feq.Zero(m.model.ServiceJitter) {
		return m.model.MeanService
	}
	// Lognormal with median MeanService and sigma = ServiceJitter.
	factor := math.Exp(m.rng.NormFloat64() * m.model.ServiceJitter)
	d := time.Duration(float64(m.model.MeanService) * factor)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// reactionTime draws one exponential discovery delay.
func (m *Marketplace) reactionTime() time.Duration {
	if m.model.ReactionDelay == 0 {
		return 0
	}
	return time.Duration(m.rng.ExpFloat64() * float64(m.model.ReactionDelay))
}

// assignment is a pending (HIT, worker) unit of work in the event heap.
type assignment struct {
	finish time.Duration
	hit    platform.HIT
	worker int
	seq    int // tie-break for determinism
}

type assignmentHeap []assignment

func (h assignmentHeap) Len() int { return len(h) }
func (h assignmentHeap) Less(a, b int) bool {
	if h[a].finish != h[b].finish {
		return h[a].finish < h[b].finish
	}
	return h[a].seq < h[b].seq
}
func (h assignmentHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *assignmentHeap) Push(x any)   { *h = append(*h, x.(assignment)) }
func (h *assignmentHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// BatchResult reports one posted batch after all answers arrived.
type BatchResult struct {
	Votes []crowd.Vote
	// Makespan is the virtual time from posting to the last answer.
	Makespan time.Duration
	// WorkerAnswers counts answered comparisons per worker.
	WorkerAnswers []int
}

// RunBatch posts every HIT to w distinct workers at the current virtual
// time and advances the clock until all answers are in — the
// non-interactive round. Workers process their assignments sequentially;
// assignment picks the w workers who can start the earliest (idle first).
func (m *Marketplace) RunBatch(hits []platform.HIT, w int) (*BatchResult, error) {
	totalWorkers := m.oracle.Workers()
	if w < 1 || w > totalWorkers {
		return nil, fmt.Errorf("des: w=%d outside [1,%d]", w, totalWorkers)
	}
	postTime := m.clock
	answers := make([]int, totalWorkers)
	var votes []crowd.Vote
	var events assignmentHeap
	seq := 0

	for _, hit := range hits {
		// Choose the w workers with the earliest availability; ties break
		// by shuffled order for fairness.
		order := m.rng.Perm(totalWorkers)
		pickEarliest(order, m.busyUntil, w)
		for _, worker := range order[:w] {
			start := m.busyUntil[worker]
			if start < postTime {
				start = postTime
			}
			start += m.reactionTime()
			finish := start
			for range hit.Pairs {
				finish += m.serviceTime()
			}
			m.busyUntil[worker] = finish
			heap.Push(&events, assignment{finish: finish, hit: hit, worker: worker, seq: seq})
			seq++
		}
	}

	makespan := time.Duration(0)
	for events.Len() > 0 {
		ev := heap.Pop(&events).(assignment)
		if ev.finish > m.clock {
			m.clock = ev.finish
		}
		for _, pr := range ev.hit.Pairs {
			votes = append(votes, crowd.Vote{
				Worker:   ev.worker,
				I:        pr.I,
				J:        pr.J,
				PrefersI: m.oracle.Answer(ev.worker, pr.I, pr.J),
			})
			answers[ev.worker]++
		}
		if ev.finish-postTime > makespan {
			makespan = ev.finish - postTime
		}
	}
	return &BatchResult{Votes: votes, Makespan: makespan, WorkerAnswers: answers}, nil
}

// pickEarliest partially sorts order so its first w entries are the workers
// with the smallest busyUntil (stable within the pre-shuffled order).
func pickEarliest(order []int, busyUntil []time.Duration, w int) {
	for i := 0; i < w && i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if busyUntil[order[j]] < busyUntil[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
}

// RunInteractive crowdsources comparisons one at a time: selectNext is
// called with all votes so far and must return the next pair to post (or
// ok=false to stop); each round waits for its w answers before the next
// selection, exactly like the active-learning baselines. Returns all votes
// and the total virtual makespan.
func (m *Marketplace) RunInteractive(w int, budgetRounds int, selectNext func(votes []crowd.Vote) (graph.Pair, bool)) (*BatchResult, error) {
	if selectNext == nil {
		return nil, fmt.Errorf("des: nil selector")
	}
	if budgetRounds < 1 {
		return nil, fmt.Errorf("des: budgetRounds must be >= 1, got %d", budgetRounds)
	}
	start := m.clock
	totalWorkers := m.oracle.Workers()
	answers := make([]int, totalWorkers)
	var votes []crowd.Vote
	for round := 0; round < budgetRounds; round++ {
		pair, ok := selectNext(votes)
		if !ok {
			break
		}
		hit := platform.HIT{ID: round, Pairs: []graph.Pair{pair}}
		res, err := m.RunBatch([]platform.HIT{hit}, w)
		if err != nil {
			return nil, err
		}
		votes = append(votes, res.Votes...)
		for k, c := range res.WorkerAnswers {
			answers[k] += c
		}
	}
	return &BatchResult{
		Votes:         votes,
		Makespan:      m.clock - start,
		WorkerAnswers: answers,
	}, nil
}
