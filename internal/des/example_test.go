package des_test

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"crowdrank/internal/des"
	"crowdrank/internal/graph"
	"crowdrank/internal/platform"
)

// lowWins answers every comparison in favor of the lower object id.
type lowWins struct{ pool int }

func (o lowWins) Answer(_, i, j int) bool { return i < j }
func (o lowWins) Workers() int            { return o.pool }

// ExampleMarketplace_RunBatch shows the virtual-clock makespan of one
// non-interactive batch: four single-comparison HITs over four workers run
// fully in parallel.
func ExampleMarketplace_RunBatch() {
	model := des.WorkerModel{MeanService: 20 * time.Second} // no jitter, no delay
	m, err := des.New(lowWins{pool: 4}, model, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		log.Fatal(err)
	}
	hits := []platform.HIT{
		{ID: 0, Pairs: []graph.Pair{{I: 0, J: 1}}},
		{ID: 1, Pairs: []graph.Pair{{I: 1, J: 2}}},
		{ID: 2, Pairs: []graph.Pair{{I: 2, J: 3}}},
		{ID: 3, Pairs: []graph.Pair{{I: 0, J: 3}}},
	}
	res, err := m.RunBatch(hits, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("votes:", len(res.Votes))
	fmt.Println("makespan:", res.Makespan)
	// Output:
	// votes: 4
	// makespan: 20s
}
