package des

import (
	"math/rand/v2"
	"testing"
	"time"

	"crowdrank/internal/faults"
	"crowdrank/internal/graph"
	"crowdrank/internal/platform"
	"crowdrank/internal/simulate"
)

// newFaultyMarket builds a marketplace plus HITs over n objects for
// collection tests.
func newFaultyMarket(t *testing.T, n, pool int, perHIT int, seed uint64) (*Marketplace, []platform.HIT) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	truth, err := simulate.GroundTruth(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	crowdPool, err := simulate.NewCrowd(pool, simulate.Gaussian, simulate.MediumQuality, rng)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := simulate.NewGroundTruthOracle(crowdPool, truth, rng)
	if err != nil {
		t.Fatal(err)
	}
	var pairs []graph.Pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, graph.Pair{I: i, J: j})
		}
	}
	hits, err := platform.PackHITs(pairs, perHIT)
	if err != nil {
		t.Fatal(err)
	}
	market, err := New(oracle, DefaultWorkerModel(), rand.New(rand.NewPCG(seed, 77)))
	if err != nil {
		t.Fatal(err)
	}
	return market, hits
}

func TestRunBatchFaultyZeroProfileDeliversEverything(t *testing.T) {
	market, hits := newFaultyMarket(t, 8, 10, 1, 1)
	inj, err := faults.NewInjector(faults.Profile{Seed: 5}, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := market.RunBatchFaulty(hits, 3, inj, CollectParams{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Delivered != res.Stats.PlannedAnswers {
		t.Errorf("zero profile delivered %d of %d", res.Stats.Delivered, res.Stats.PlannedAnswers)
	}
	if len(res.Votes) != res.Stats.PlannedAnswers {
		t.Errorf("votes %d != planned %d", len(res.Votes), res.Stats.PlannedAnswers)
	}
	if res.Stats.Reposts != 0 || res.Stats.Repaired != 0 || res.Stats.Waves != 1 {
		t.Errorf("zero profile triggered repair: %+v", res.Stats)
	}
	if res.Stats.Makespan <= 0 {
		t.Error("makespan should be positive")
	}
}

func TestRunBatchFaultyDropoutAndRepair(t *testing.T) {
	profile := faults.Profile{Dropout: 0.3, Seed: 11}
	params := CollectParams{Deadline: 30 * time.Minute, MaxReposts: 2, RepairBudget: -1}

	market, hits := newFaultyMarket(t, 10, 12, 1, 2)
	inj, err := faults.NewInjector(profile, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := market.RunBatchFaulty(hits, 4, inj, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DroppedAttempts == 0 {
		t.Fatal("30% dropout produced no dropped attempts")
	}
	if res.Stats.Repaired == 0 || res.Stats.Reposts == 0 {
		t.Errorf("repair waves recovered nothing: %+v", res.Stats)
	}
	if res.Stats.Delivered <= res.Stats.PlannedAnswers/2 {
		t.Errorf("delivered %d of %d despite repair", res.Stats.Delivered, res.Stats.PlannedAnswers)
	}
	if res.Stats.RepairSpent <= 0 {
		t.Error("repair should cost money")
	}
	if res.Stats.Waves < 2 {
		t.Errorf("expected repair waves, got %d", res.Stats.Waves)
	}

	// Same seeds reproduce the identical collection, vote for vote.
	market2, hits2 := newFaultyMarket(t, 10, 12, 1, 2)
	inj2, err := faults.NewInjector(profile, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := market2.RunBatchFaulty(hits2, 4, inj2, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != res2.Stats {
		t.Errorf("stats not reproducible:\n%+v\n%+v", res.Stats, res2.Stats)
	}
	if len(res.Votes) != len(res2.Votes) {
		t.Fatalf("vote counts differ: %d vs %d", len(res.Votes), len(res2.Votes))
	}
	for i := range res.Votes {
		if res.Votes[i] != res2.Votes[i] {
			t.Fatalf("vote %d differs: %+v vs %+v", i, res.Votes[i], res2.Votes[i])
		}
	}
}

func TestRunBatchFaultyNoRepostsWithoutBudget(t *testing.T) {
	market, hits := newFaultyMarket(t, 10, 12, 1, 3)
	inj, err := faults.NewInjector(faults.Profile{Dropout: 0.4, Seed: 9}, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := market.RunBatchFaulty(hits, 4, inj, CollectParams{
		Deadline: 30 * time.Minute, MaxReposts: 3, RepairBudget: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Reposts != 0 || res.Stats.RepairSpent != 0 {
		t.Errorf("zero repair budget still reposted: %+v", res.Stats)
	}
	if res.Stats.Unrecovered() == 0 {
		t.Error("40% dropout with no repair should lose answers")
	}
}

func TestRunBatchFaultyPartialAndGarbage(t *testing.T) {
	market, hits := newFaultyMarket(t, 12, 10, 4, 4)
	inj, err := faults.NewInjector(faults.Profile{
		Partial: 0.5, Malformed: 0.1, Duplicate: 0.1, Seed: 21,
	}, 12, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := market.RunBatchFaulty(hits, 3, inj, CollectParams{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PartialLostPairs == 0 {
		t.Error("50% partial on 4-pair HITs lost nothing")
	}
	if res.Stats.MalformedVotes == 0 || res.Stats.DuplicateVotes == 0 {
		t.Errorf("garbage rates produced none: %+v", res.Stats)
	}
	// Raw votes include the garbage: delivered + duplicates.
	if len(res.Votes) != res.Stats.Delivered+res.Stats.DuplicateVotes {
		t.Errorf("votes %d, delivered %d + dup %d", len(res.Votes), res.Stats.Delivered, res.Stats.DuplicateVotes)
	}
}

func TestRunBatchFaultyStragglersMissDeadline(t *testing.T) {
	market, hits := newFaultyMarket(t, 10, 10, 1, 6)
	inj, err := faults.NewInjector(faults.Profile{Straggler: 0.4, StragglerFactor: 50, Seed: 8}, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Tight deadline: straggled answers (50x service time) cannot make it.
	res, err := market.RunBatchFaulty(hits, 3, inj, CollectParams{Deadline: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LateAttempts == 0 {
		t.Error("stragglers under a tight deadline should be late")
	}
	if res.Stats.Delivered+res.Stats.Unrecovered() != res.Stats.PlannedAnswers {
		t.Errorf("accounting mismatch: %+v", res.Stats)
	}
}

func TestRunBatchFaultyValidation(t *testing.T) {
	market, hits := newFaultyMarket(t, 6, 8, 1, 7)
	inj, err := faults.NewInjector(faults.Profile{}, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := market.RunBatchFaulty(hits, 3, nil, CollectParams{}); err == nil {
		t.Error("nil injector should be rejected")
	}
	if _, err := market.RunBatchFaulty(hits, 0, inj, CollectParams{}); err == nil {
		t.Error("w=0 should be rejected")
	}
	if _, err := market.RunBatchFaulty(hits, 3, inj, CollectParams{MaxReposts: 1}); err == nil {
		t.Error("reposts without a deadline should be rejected")
	}
	if _, err := market.RunBatchFaulty(hits, 3, inj, CollectParams{Deadline: -time.Second}); err == nil {
		t.Error("negative deadline should be rejected")
	}
}

func TestCollectStatsHelpers(t *testing.T) {
	s := CollectStats{PlannedAnswers: 100, Delivered: 80}
	if got := s.Unrecovered(); got != 20 {
		t.Errorf("Unrecovered = %d", got)
	}
	if got := s.DeliveryRate(); got != 0.8 {
		t.Errorf("DeliveryRate = %v", got)
	}
	if got := (CollectStats{}).DeliveryRate(); got != 1 {
		t.Errorf("empty DeliveryRate = %v", got)
	}
}
