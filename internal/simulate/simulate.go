// Package simulate reproduces the paper's simulation setting (Section
// VI-A4): ground-truth permutations, workers whose error rates follow
// Gaussian- or Uniform-distributed standard deviations at three quality
// levels, and per-vote error draws epsilon_k ~ N(0, sigma_k^2).
//
// It also provides the synthetic stand-in for the paper's proprietary AMT
// study (Section VI-A3): a PubFig-style image collection with latent "smile"
// scores, a machine pre-ranking, the close-rank image picker (adjacent rank
// gap <= 46), and Thurstonian human voters whose disagreement grows as
// scores get closer. See DESIGN.md for the substitution rationale.
package simulate

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// QualityDistribution selects how per-worker error deviations sigma_k are
// drawn (Section VI-A4).
type QualityDistribution int

const (
	// Gaussian draws sigma_k ~ |N(0, sigma_s^2)|.
	Gaussian QualityDistribution = iota + 1
	// Uniform draws sigma_k uniformly from a level-dependent range.
	Uniform
)

func (d QualityDistribution) String() string {
	switch d {
	case Gaussian:
		return "gaussian"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("QualityDistribution(%d)", int(d))
	}
}

// QualityLevel selects the paper's high / medium / low worker quality
// scenarios.
type QualityLevel int

const (
	// HighQuality corresponds to sigma_s = 0.01 (Gaussian) or the range
	// [0, 0.2] (Uniform).
	HighQuality QualityLevel = iota + 1
	// MediumQuality corresponds to sigma_s = 0.1 or [0.1, 0.3].
	MediumQuality
	// LowQuality corresponds to sigma_s = 1 or [0.2, 0.4].
	LowQuality
)

func (l QualityLevel) String() string {
	switch l {
	case HighQuality:
		return "high"
	case MediumQuality:
		return "medium"
	case LowQuality:
		return "low"
	default:
		return fmt.Sprintf("QualityLevel(%d)", int(l))
	}
}

// gaussianSigmaS maps quality levels to the paper's sigma_s values.
func gaussianSigmaS(l QualityLevel) (float64, error) {
	switch l {
	case HighQuality:
		return 0.01, nil
	case MediumQuality:
		return 0.1, nil
	case LowQuality:
		return 1.0, nil
	default:
		return 0, fmt.Errorf("simulate: unknown quality level %d", int(l))
	}
}

// uniformRange maps quality levels to the paper's uniform sigma_k ranges.
func uniformRange(l QualityLevel) (lo, hi float64, err error) {
	switch l {
	case HighQuality:
		return 0.0, 0.2, nil
	case MediumQuality:
		return 0.1, 0.3, nil
	case LowQuality:
		return 0.2, 0.4, nil
	default:
		return 0, 0, fmt.Errorf("simulate: unknown quality level %d", int(l))
	}
}

// Crowd is a pool of simulated workers with fixed error deviations.
type Crowd struct {
	sigmas []float64
}

// NewCrowd draws m workers' error deviations from the requested
// distribution and quality level.
func NewCrowd(m int, dist QualityDistribution, level QualityLevel, rng *rand.Rand) (*Crowd, error) {
	if m < 1 {
		return nil, fmt.Errorf("simulate: need at least one worker, got m=%d", m)
	}
	if rng == nil {
		return nil, fmt.Errorf("simulate: nil random source")
	}
	sigmas := make([]float64, m)
	switch dist {
	case Gaussian:
		sigmaS, err := gaussianSigmaS(level)
		if err != nil {
			return nil, err
		}
		for k := range sigmas {
			sigmas[k] = math.Abs(rng.NormFloat64() * sigmaS)
		}
	case Uniform:
		lo, hi, err := uniformRange(level)
		if err != nil {
			return nil, err
		}
		for k := range sigmas {
			sigmas[k] = lo + rng.Float64()*(hi-lo)
		}
	default:
		return nil, fmt.Errorf("simulate: unknown quality distribution %d", int(dist))
	}
	return &Crowd{sigmas: sigmas}, nil
}

// NewCrowdFromSigmas builds a crowd with explicit per-worker deviations,
// useful for tests and adversarial scenarios.
func NewCrowdFromSigmas(sigmas []float64) (*Crowd, error) {
	if len(sigmas) == 0 {
		return nil, fmt.Errorf("simulate: empty sigma list")
	}
	for k, s := range sigmas {
		if s < 0 || math.IsNaN(s) {
			return nil, fmt.Errorf("simulate: worker %d has invalid sigma %v", k, s)
		}
	}
	out := make([]float64, len(sigmas))
	copy(out, sigmas)
	return &Crowd{sigmas: out}, nil
}

// Size returns the number of workers.
func (c *Crowd) Size() int { return len(c.sigmas) }

// Sigma returns worker k's error deviation.
func (c *Crowd) Sigma(k int) float64 { return c.sigmas[k] }

// ErrorProbability draws worker k's error probability for one vote:
// epsilon = |N(0, sigma_k^2)| clamped to [0, 1] (Section VI-A4).
func (c *Crowd) ErrorProbability(k int, rng *rand.Rand) float64 {
	eps := math.Abs(rng.NormFloat64() * c.sigmas[k])
	if eps > 1 {
		eps = 1
	}
	return eps
}

// GroundTruthOracle answers comparisons according to a ground-truth ranking
// with the crowd's per-vote error model: with probability 1-epsilon_k the
// worker votes for the true preference, otherwise against it.
type GroundTruthOracle struct {
	crowd *Crowd
	// position[object] = rank in the ground truth (0 = most preferred).
	position []int
	rng      *rand.Rand
}

// NewGroundTruthOracle binds a crowd to a ground-truth ranking (best-first
// permutation).
func NewGroundTruthOracle(c *Crowd, truth []int, rng *rand.Rand) (*GroundTruthOracle, error) {
	if c == nil {
		return nil, fmt.Errorf("simulate: nil crowd")
	}
	if rng == nil {
		return nil, fmt.Errorf("simulate: nil random source")
	}
	pos := make([]int, len(truth))
	seen := make([]bool, len(truth))
	for rank, obj := range truth {
		if obj < 0 || obj >= len(truth) || seen[obj] {
			return nil, fmt.Errorf("simulate: ground truth is not a permutation at rank %d", rank)
		}
		seen[obj] = true
		pos[obj] = rank
	}
	return &GroundTruthOracle{crowd: c, position: pos, rng: rng}, nil
}

// Answer reports worker k's (possibly wrong) vote on whether O_i ≺ O_j.
func (o *GroundTruthOracle) Answer(worker, i, j int) bool {
	truth := o.position[i] < o.position[j]
	eps := o.crowd.ErrorProbability(worker, o.rng)
	if o.rng.Float64() < eps {
		return !truth
	}
	return truth
}

// Workers returns the size of the underlying crowd.
func (o *GroundTruthOracle) Workers() int { return o.crowd.Size() }

// GroundTruth generates a uniformly random ranking (best-first permutation)
// of n objects.
func GroundTruth(n int, rng *rand.Rand) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("simulate: need at least one object, got n=%d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("simulate: nil random source")
	}
	return rng.Perm(n), nil
}
