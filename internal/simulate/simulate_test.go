package simulate

import (
	"math"
	"math/rand/v2"
	"testing"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 4)) }

func TestNewCrowdValidation(t *testing.T) {
	rng := newRNG(1)
	if _, err := NewCrowd(0, Gaussian, MediumQuality, rng); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewCrowd(3, Gaussian, MediumQuality, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := NewCrowd(3, 99, MediumQuality, rng); err == nil {
		t.Error("unknown distribution should fail")
	}
	if _, err := NewCrowd(3, Gaussian, 99, rng); err == nil {
		t.Error("unknown level should fail")
	}
}

func TestCrowdSigmaRanges(t *testing.T) {
	rng := newRNG(2)
	// Uniform sigmas must land in the paper's stated ranges.
	ranges := map[QualityLevel][2]float64{
		HighQuality:   {0, 0.2},
		MediumQuality: {0.1, 0.3},
		LowQuality:    {0.2, 0.4},
	}
	for level, bounds := range ranges {
		c, err := NewCrowd(500, Uniform, level, rng)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < c.Size(); k++ {
			s := c.Sigma(k)
			if s < bounds[0] || s > bounds[1] {
				t.Fatalf("%v: sigma %v outside [%v,%v]", level, s, bounds[0], bounds[1])
			}
		}
	}
	// Gaussian sigmas are |N(0, sigma_s^2)|: nonnegative, and the sample
	// mean tracks sigma_s * sqrt(2/pi).
	c, err := NewCrowd(5000, Gaussian, MediumQuality, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for k := 0; k < c.Size(); k++ {
		if c.Sigma(k) < 0 {
			t.Fatal("negative sigma")
		}
		sum += c.Sigma(k)
	}
	mean := sum / float64(c.Size())
	want := 0.1 * math.Sqrt(2/math.Pi)
	if math.Abs(mean-want) > 0.01 {
		t.Errorf("gaussian sigma mean = %v, want ~%v", mean, want)
	}
}

func TestQualityLevelOrdering(t *testing.T) {
	// Higher quality level -> statistically smaller sigma.
	rng := newRNG(3)
	meanSigma := func(level QualityLevel) float64 {
		c, err := NewCrowd(2000, Gaussian, level, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for k := 0; k < c.Size(); k++ {
			sum += c.Sigma(k)
		}
		return sum / float64(c.Size())
	}
	hi, med, lo := meanSigma(HighQuality), meanSigma(MediumQuality), meanSigma(LowQuality)
	if !(hi < med && med < lo) {
		t.Errorf("sigma ordering violated: high=%v medium=%v low=%v", hi, med, lo)
	}
}

func TestNewCrowdFromSigmas(t *testing.T) {
	c, err := NewCrowdFromSigmas([]float64{0.1, 0.2})
	if err != nil || c.Size() != 2 || c.Sigma(1) != 0.2 {
		t.Fatalf("NewCrowdFromSigmas: %v, %v", c, err)
	}
	if _, err := NewCrowdFromSigmas(nil); err == nil {
		t.Error("empty sigmas should fail")
	}
	if _, err := NewCrowdFromSigmas([]float64{-1}); err == nil {
		t.Error("negative sigma should fail")
	}
}

func TestErrorProbabilityBounded(t *testing.T) {
	c, err := NewCrowdFromSigmas([]float64{5}) // huge sigma: clamp matters
	if err != nil {
		t.Fatal(err)
	}
	rng := newRNG(4)
	for trial := 0; trial < 200; trial++ {
		eps := c.ErrorProbability(0, rng)
		if eps < 0 || eps > 1 {
			t.Fatalf("eps = %v outside [0,1]", eps)
		}
	}
}

func TestGroundTruthOracleAccuracyTracksSigma(t *testing.T) {
	rng := newRNG(5)
	truth, err := GroundTruth(30, rng)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(truth))
	for r, o := range truth {
		pos[o] = r
	}
	c, err := NewCrowdFromSigmas([]float64{0.001, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewGroundTruthOracle(c, truth, rng)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Workers() != 2 {
		t.Fatal("Workers() wrong")
	}
	rate := func(worker int) float64 {
		correct, attempts := 0, 0
		const trials = 2000
		for trial := 0; trial < trials; trial++ {
			i, j := rng.IntN(30), rng.IntN(30)
			if i == j {
				continue
			}
			attempts++
			got := oracle.Answer(worker, i, j)
			if got == (pos[i] < pos[j]) {
				correct++
			}
		}
		return float64(correct) / float64(attempts)
	}
	good, bad := rate(0), rate(1)
	if good < 0.97 {
		t.Errorf("near-perfect worker accuracy = %v", good)
	}
	if bad >= good {
		t.Errorf("noisy worker (%v) should be worse than precise one (%v)", bad, good)
	}
}

func TestNewGroundTruthOracleValidation(t *testing.T) {
	rng := newRNG(6)
	c, _ := NewCrowdFromSigmas([]float64{0.1})
	if _, err := NewGroundTruthOracle(nil, []int{0}, rng); err == nil {
		t.Error("nil crowd should fail")
	}
	if _, err := NewGroundTruthOracle(c, []int{0}, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := NewGroundTruthOracle(c, []int{0, 0}, rng); err == nil {
		t.Error("non-permutation truth should fail")
	}
	if _, err := NewGroundTruthOracle(c, []int{1, 2}, rng); err == nil {
		t.Error("out-of-range truth should fail")
	}
}

func TestGroundTruth(t *testing.T) {
	rng := newRNG(7)
	perm, err := GroundTruth(50, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 50)
	for _, v := range perm {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
	if _, err := GroundTruth(0, rng); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := GroundTruth(5, nil); err == nil {
		t.Error("nil rng should fail")
	}
}
