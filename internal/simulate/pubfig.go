package simulate

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"crowdrank/internal/stat"
)

// ImageSet is the synthetic stand-in for the paper's Public Figures Face
// Database study: Total images with a latent "smile" score each, plus the
// ranking produced by a simulated machine image-ranking algorithm (a noisy
// observer of the latent scores, mirroring the relative-attributes ranker
// the paper used for pre-selection). The latent scores are never exposed to
// inference — like the paper, the AMT experiment has no ground truth and is
// evaluated by the agreement between TAPS and SAPS.
type ImageSet struct {
	// Scores holds the latent smile scores, indexed by image id.
	Scores []float64
	// MachineRanking is the pre-selection ranking (best-first image ids)
	// produced by the simulated image-ranking algorithm.
	MachineRanking []int
}

// PubFigParams configures the synthetic image collection.
type PubFigParams struct {
	// Total is the collection size; the paper uses 1800 images.
	Total int
	// MachineNoise is the standard deviation of the machine ranker's
	// observation noise relative to unit-variance scores.
	MachineNoise float64
}

// DefaultPubFigParams mirrors the paper's collection.
func DefaultPubFigParams() PubFigParams {
	return PubFigParams{Total: 1800, MachineNoise: 0.25}
}

// NewImageSet generates the synthetic collection.
func NewImageSet(p PubFigParams, rng *rand.Rand) (*ImageSet, error) {
	if p.Total < 2 {
		return nil, fmt.Errorf("simulate: image set needs at least two images, got %d", p.Total)
	}
	if p.MachineNoise < 0 {
		return nil, fmt.Errorf("simulate: negative machine noise %v", p.MachineNoise)
	}
	if rng == nil {
		return nil, fmt.Errorf("simulate: nil random source")
	}
	scores := make([]float64, p.Total)
	observed := make([]float64, p.Total)
	for i := range scores {
		scores[i] = rng.NormFloat64()
		observed[i] = scores[i] + rng.NormFloat64()*p.MachineNoise
	}
	ranking := make([]int, p.Total)
	for i := range ranking {
		ranking[i] = i
	}
	sort.SliceStable(ranking, func(a, b int) bool { return observed[ranking[a]] > observed[ranking[b]] })
	return &ImageSet{Scores: scores, MachineRanking: ranking}, nil
}

// PickClose selects k images whose machine ranks are close together: the
// rank difference between consecutively picked images never exceeds maxGap
// (the paper uses 46), so every selected pair has genuinely conflicting
// opinions. It returns the selected image ids in machine-rank order.
func (s *ImageSet) PickClose(k, maxGap int, rng *rand.Rand) ([]int, error) {
	n := len(s.MachineRanking)
	if k < 2 || k > n {
		return nil, fmt.Errorf("simulate: cannot pick %d images from %d", k, n)
	}
	if maxGap < 1 {
		return nil, fmt.Errorf("simulate: maxGap must be >= 1, got %d", maxGap)
	}
	if rng == nil {
		return nil, fmt.Errorf("simulate: nil random source")
	}
	// Choose a random feasible anchor, then walk forward with random gaps
	// in [1, maxGap], clamping so k picks always fit.
	maxSpan := (k - 1) * maxGap
	if maxSpan > n-1 {
		maxSpan = n - 1
	}
	anchor := rng.IntN(n - maxSpan)
	picks := make([]int, 0, k)
	rank := anchor
	picks = append(picks, s.MachineRanking[rank])
	for len(picks) < k {
		remaining := k - len(picks)
		// Largest gap that still leaves room for the remaining picks.
		roomPerPick := (n - 1 - rank) / remaining
		gapCap := maxGap
		if roomPerPick < gapCap {
			gapCap = roomPerPick
		}
		if gapCap < 1 {
			return nil, fmt.Errorf("simulate: ran out of rank room picking %d of %d images", len(picks)+1, k)
		}
		rank += 1 + rng.IntN(gapCap)
		picks = append(picks, s.MachineRanking[rank])
	}
	return picks, nil
}

// HumanOracle simulates AMT workers judging smile intensity with a
// Thurstone comparison model: the probability of voting image i over image
// j is Phi((s_i - s_j) / tau_k), where tau_k grows with the worker's error
// deviation. Close scores therefore yield near-coin-flip votes — exactly
// the conflicting-opinion regime the paper's AMT study targets.
type HumanOracle struct {
	crowd *Crowd
	// scores are indexed by *local* object index (position in the selected
	// image list), not by image id.
	scores []float64
	// BaseTau sets the discrimination scale for a perfect worker.
	baseTau float64
	rng     *rand.Rand
}

// NewHumanOracle binds a crowd to the latent scores of the selected images.
// images are image ids into set; object index o corresponds to images[o].
func NewHumanOracle(set *ImageSet, images []int, c *Crowd, baseTau float64, rng *rand.Rand) (*HumanOracle, error) {
	if set == nil {
		return nil, fmt.Errorf("simulate: nil image set")
	}
	if c == nil {
		return nil, fmt.Errorf("simulate: nil crowd")
	}
	if baseTau <= 0 {
		return nil, fmt.Errorf("simulate: baseTau must be positive, got %v", baseTau)
	}
	if rng == nil {
		return nil, fmt.Errorf("simulate: nil random source")
	}
	scores := make([]float64, len(images))
	for o, id := range images {
		if id < 0 || id >= len(set.Scores) {
			return nil, fmt.Errorf("simulate: image id %d outside collection of %d", id, len(set.Scores))
		}
		scores[o] = set.Scores[id]
	}
	return &HumanOracle{crowd: c, scores: scores, baseTau: baseTau, rng: rng}, nil
}

// Answer reports worker k's vote on whether object i smiles more than
// object j (local indices).
func (o *HumanOracle) Answer(worker, i, j int) bool {
	tau := o.baseTau * (1 + o.crowd.Sigma(worker))
	p := stat.NormalCDF((o.scores[i] - o.scores[j]) / tau)
	return o.rng.Float64() < p
}

// Workers returns the size of the underlying crowd.
func (o *HumanOracle) Workers() int { return o.crowd.Size() }

// ScoreRanking returns the selected images' local indices ordered by latent
// score (best-first) — available to tests only; the experiments never use
// it, mirroring the paper's "no ground truth" setting.
func (o *HumanOracle) ScoreRanking() []int {
	idx := make([]int, len(o.scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return o.scores[idx[a]] > o.scores[idx[b]] })
	return idx
}

// PairCloseness reports the |score gap| between two local objects; tests use
// it to verify the conflicting-opinion regime.
func (o *HumanOracle) PairCloseness(i, j int) float64 {
	return math.Abs(o.scores[i] - o.scores[j])
}
