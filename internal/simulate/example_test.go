package simulate_test

import (
	"fmt"
	"log"
	"math/rand/v2"

	"crowdrank/internal/simulate"
)

// ExampleNewCrowd draws the paper's Section VI-A4 worker pool and answers a
// comparison through the ground-truth oracle.
func ExampleNewCrowd() {
	rng := rand.New(rand.NewPCG(7, 8))
	crowd, err := simulate.NewCrowd(5, simulate.Uniform, simulate.MediumQuality, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workers:", crowd.Size())
	// Uniform medium quality draws sigma_k from [0.1, 0.3].
	inRange := true
	for k := 0; k < crowd.Size(); k++ {
		if s := crowd.Sigma(k); s < 0.1 || s > 0.3 {
			inRange = false
		}
	}
	fmt.Println("sigmas in [0.1, 0.3]:", inRange)
	// Output:
	// workers: 5
	// sigmas in [0.1, 0.3]: true
}

// ExampleImageSet_PickClose selects closely machine-ranked images for the
// AMT-style study (adjacent rank gap at most 46, as in the paper).
func ExampleImageSet_PickClose() {
	rng := rand.New(rand.NewPCG(9, 10))
	set, err := simulate.NewImageSet(simulate.DefaultPubFigParams(), rng)
	if err != nil {
		log.Fatal(err)
	}
	picks, err := set.PickClose(10, 46, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("collection size:", len(set.Scores))
	fmt.Println("picked images:", len(picks))
	// Output:
	// collection size: 1800
	// picked images: 10
}
