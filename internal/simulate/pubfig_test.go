package simulate

import (
	"math"
	"testing"
)

func TestNewImageSet(t *testing.T) {
	rng := newRNG(10)
	set, err := NewImageSet(DefaultPubFigParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Scores) != 1800 || len(set.MachineRanking) != 1800 {
		t.Fatalf("set sizes: %d scores, %d ranking", len(set.Scores), len(set.MachineRanking))
	}
	// MachineRanking must be a permutation.
	seen := make([]bool, 1800)
	for _, id := range set.MachineRanking {
		if id < 0 || id >= 1800 || seen[id] {
			t.Fatal("machine ranking is not a permutation")
		}
		seen[id] = true
	}
	// The machine ranking must correlate strongly (but not perfectly) with
	// the latent scores.
	inversions := 0
	for k := 0; k+1 < 200; k++ {
		if set.Scores[set.MachineRanking[k]] < set.Scores[set.MachineRanking[k+1]] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("machine ranking should be noisy (no inversions found)")
	}
	if inversions > 120 {
		t.Errorf("machine ranking too noisy: %d/199 adjacent inversions", inversions)
	}
	if _, err := NewImageSet(PubFigParams{Total: 1}, rng); err == nil {
		t.Error("tiny set should fail")
	}
	if _, err := NewImageSet(PubFigParams{Total: 10, MachineNoise: -1}, rng); err == nil {
		t.Error("negative noise should fail")
	}
	if _, err := NewImageSet(DefaultPubFigParams(), nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestPickCloseGapConstraint(t *testing.T) {
	rng := newRNG(11)
	set, err := NewImageSet(DefaultPubFigParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	rankOf := make(map[int]int, len(set.MachineRanking))
	for r, id := range set.MachineRanking {
		rankOf[id] = r
	}
	for _, k := range []int{10, 20} {
		picks, err := set.PickClose(k, 46, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(picks) != k {
			t.Fatalf("picked %d, want %d", len(picks), k)
		}
		for i := 1; i < len(picks); i++ {
			gap := rankOf[picks[i]] - rankOf[picks[i-1]]
			if gap < 1 || gap > 46 {
				t.Fatalf("adjacent rank gap %d outside [1,46]", gap)
			}
		}
	}
	if _, err := set.PickClose(1, 46, rng); err == nil {
		t.Error("k<2 should fail")
	}
	if _, err := set.PickClose(10, 0, rng); err == nil {
		t.Error("maxGap<1 should fail")
	}
	if _, err := set.PickClose(10, 46, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestHumanOracleCloseScoresConflict(t *testing.T) {
	rng := newRNG(12)
	set, err := NewImageSet(DefaultPubFigParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	picks, err := set.PickClose(10, 46, rng)
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := NewCrowd(50, Uniform, MediumQuality, rng)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewHumanOracle(set, picks, crowd, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Workers() != 50 {
		t.Fatal("Workers() wrong")
	}
	// Adjacent-in-machine-rank picks have close scores, so the vote split
	// should be genuinely conflicting: neither unanimous nor deterministic
	// across many workers, on average.
	splits := 0.0
	pairsTried := 0
	for o := 0; o+1 < 10; o++ {
		votesForI := 0
		const voters = 60
		for w := 0; w < 50 && w < voters; w++ {
			if oracle.Answer(w, o, o+1) {
				votesForI++
			}
		}
		frac := float64(votesForI) / 50
		splits += math.Abs(frac - 0.5)
		pairsTried++
	}
	meanDeviation := splits / float64(pairsTried)
	if meanDeviation > 0.45 {
		t.Errorf("adjacent picks produced near-unanimous votes (mean |split-0.5| = %v); want conflict", meanDeviation)
	}
	// The score ranking helper must be a permutation of the local indices.
	ranked := oracle.ScoreRanking()
	if len(ranked) != 10 {
		t.Fatal("ScoreRanking length wrong")
	}
	if oracle.PairCloseness(0, 1) < 0 {
		t.Error("closeness must be nonnegative")
	}
}

func TestNewHumanOracleValidation(t *testing.T) {
	rng := newRNG(13)
	set, _ := NewImageSet(PubFigParams{Total: 20, MachineNoise: 0.1}, rng)
	crowd, _ := NewCrowdFromSigmas([]float64{0.1})
	if _, err := NewHumanOracle(nil, []int{0}, crowd, 0.5, rng); err == nil {
		t.Error("nil set should fail")
	}
	if _, err := NewHumanOracle(set, []int{0}, nil, 0.5, rng); err == nil {
		t.Error("nil crowd should fail")
	}
	if _, err := NewHumanOracle(set, []int{0}, crowd, 0, rng); err == nil {
		t.Error("zero tau should fail")
	}
	if _, err := NewHumanOracle(set, []int{0}, crowd, 0.5, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := NewHumanOracle(set, []int{99}, crowd, 0.5, rng); err == nil {
		t.Error("image id out of range should fail")
	}
}

func TestQualityStringers(t *testing.T) {
	if Gaussian.String() != "gaussian" || Uniform.String() != "uniform" {
		t.Error("distribution names wrong")
	}
	if HighQuality.String() != "high" || MediumQuality.String() != "medium" || LowQuality.String() != "low" {
		t.Error("level names wrong")
	}
	if QualityDistribution(9).String() == "" || QualityLevel(9).String() == "" {
		t.Error("unknown values should still print")
	}
}
