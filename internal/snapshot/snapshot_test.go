package snapshot

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crowdrank/internal/crowd"
)

func sampleState(seq uint64) State {
	return State{
		N: 6, M: 3, Seq: seq, Gen: seq * 2, DupVotes: int(seq),
		Votes: []crowd.Vote{
			{Worker: 0, I: 0, J: 1, PrefersI: true},
			{Worker: 1, I: 2, J: 5, PrefersI: false},
			{Worker: 2, I: 3, J: 4, PrefersI: true},
		},
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := sampleState(42)
	path, err := Write(dir, st)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.Contains(filepath.Base(path), "42") {
		t.Fatalf("unexpected snapshot path %q", path)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != st.N || got.M != st.M || got.Seq != st.Seq || got.Gen != st.Gen || got.DupVotes != st.DupVotes {
		t.Fatalf("metadata mismatch: got %+v want %+v", got, st)
	}
	if len(got.Votes) != len(st.Votes) {
		t.Fatalf("vote count %d, want %d", len(got.Votes), len(st.Votes))
	}
	for i := range st.Votes {
		if got.Votes[i] != st.Votes[i] {
			t.Fatalf("vote %d = %+v, want %+v", i, got.Votes[i], st.Votes[i])
		}
	}
	// No tmp residue after a clean write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("tmp residue %s after clean write", e.Name())
		}
	}
}

func TestLoadRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	path, err := Write(dir, sampleState(7))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string]func([]byte) []byte{
		"bit flip in payload": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x20
			return c
		},
		"bit flip in magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0x01
			return c
		},
		"truncated payload": func(b []byte) []byte { return b[:len(b)-3] },
		"truncated header":  func(b []byte) []byte { return b[:10] },
		"empty":             func([]byte) []byte { return nil },
		"trailing garbage":  func(b []byte) []byte { return append(append([]byte(nil), b...), 0xFF) },
	}
	for name, mutate := range damage {
		t.Run(name, func(t *testing.T) {
			bad := filepath.Join(dir, "bad")
			if err := os.WriteFile(bad, mutate(clean), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Load(bad); err == nil {
				t.Fatal("damaged snapshot loaded without error")
			}
		})
	}
}

func TestLoadRejectsOutOfUniverseVotes(t *testing.T) {
	dir := t.TempDir()
	st := sampleState(1)
	st.Votes = append(st.Votes, crowd.Vote{Worker: 99, I: 0, J: 1, PrefersI: true})
	path, err := Write(dir, st)
	if err != nil {
		t.Fatal(err)
	}
	// The checksum is fine — the *content* is inconsistent. A snapshot is
	// written from validated state, so this means corruption upstream.
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "universe") {
		t.Fatalf("out-of-universe vote should fail Load, got %v", err)
	}
}

func TestListNewestFirstAndPrune(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{5, 90, 12} {
		if _, err := Write(dir, sampleState(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Decoys: a tmp leftover and an unrelated file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, Prefix+"00000000000000000099.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal.000001"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Seq != 90 || entries[1].Seq != 12 || entries[2].Seq != 5 {
		t.Fatalf("unexpected listing %+v", entries)
	}

	removed, err := Prune(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || !strings.Contains(removed[0], "5") {
		t.Fatalf("prune removed %v, want just the oldest", removed)
	}
	entries, err = List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Seq != 12 {
		t.Fatalf("after prune: %+v", entries)
	}
	if usage := DiskUsage(dir); usage <= 0 {
		t.Fatalf("disk usage should count surviving snapshots, got %d", usage)
	}
	// Listing a directory that does not exist is empty, not an error.
	missing, err := List(filepath.Join(dir, "nope"))
	if err != nil || missing != nil {
		t.Fatalf("missing dir: %v %v", missing, err)
	}
}

func TestWriteCleansStaleTmp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, Prefix+"00000000000000000003.tmp")
	if err := os.WriteFile(stale, []byte("crashed writer residue"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(dir, sampleState(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp survived a successful write: %v", err)
	}
}

// FuzzSnapshotLoad feeds arbitrary bytes to Load: whatever the damage, it
// must never panic and must either reject the file or return a State
// that survives a write-load round trip unchanged.
func FuzzSnapshotLoad(f *testing.F) {
	dir := f.TempDir()
	path, err := Write(dir, sampleState(3))
	if err != nil {
		f.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-2])
	f.Add([]byte{})
	f.Add([]byte("CRWDSNP\x01 then garbage"))
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		target := filepath.Join(t.TempDir(), "snap")
		if err := os.WriteFile(target, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Load(target)
		if err != nil {
			return // rejected: fine, no panic
		}
		// Accepted states must be internally consistent enough to
		// round-trip bit-identically through Write+Load.
		for i, v := range st.Votes {
			if err := v.Validate(st.N, st.M); err != nil {
				t.Fatalf("accepted snapshot holds invalid vote %d: %v", i, err)
			}
		}
		again, err := Write(t.TempDir(), st)
		if err != nil {
			t.Fatalf("rewriting accepted state: %v", err)
		}
		st2, err := Load(again)
		if err != nil {
			t.Fatalf("reloading rewritten state: %v", err)
		}
		if st2.N != st.N || st2.M != st.M || st2.Seq != st.Seq || st2.Gen != st.Gen ||
			st2.DupVotes != st.DupVotes || len(st2.Votes) != len(st.Votes) || len(st2.Acks) != len(st.Acks) {
			t.Fatalf("round trip drift: %+v vs %+v", st, st2)
		}
		for i := range st.Votes {
			if st.Votes[i] != st2.Votes[i] {
				t.Fatalf("vote %d drifted: %+v vs %+v", i, st.Votes[i], st2.Votes[i])
			}
		}
	})
}

func TestAckWindowRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := sampleState(11)
	st.Acks = []AckEntry{
		{Key: "0123456789abcdef", Accepted: 3, Duplicates: 1, Malformed: 2, Seq: 1, TotalVotes: 3},
		{Key: "k2", Accepted: 0, Duplicates: 4, Malformed: 0, Seq: 2, TotalVotes: 3},
	}
	path, err := Write(dir, st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Acks) != len(st.Acks) {
		t.Fatalf("ack count %d, want %d", len(got.Acks), len(st.Acks))
	}
	for i := range st.Acks {
		if got.Acks[i] != st.Acks[i] {
			t.Fatalf("ack %d = %+v, want %+v", i, got.Acks[i], st.Acks[i])
		}
	}
}

// TestLoadV1Compat hand-builds a version-1 snapshot (no ack section) and
// checks it still loads, with an empty window — upgraded daemons must
// recover from snapshots written before the format grew acks.
func TestLoadV1Compat(t *testing.T) {
	st := sampleState(9)
	payload := encode(st)
	// encode always appends the ack section; a v1 payload ends after the
	// votes, so strip the trailing zero ack count.
	if len(st.Acks) != 0 || payload[len(payload)-1] != 0 {
		t.Fatal("test setup: expected a trailing zero ack count")
	}
	payload = payload[:len(payload)-1]
	buf := make([]byte, headerSize+len(payload))
	copy(buf, fileMagicV1)
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint64(buf[12:20], uint64(len(payload)))
	copy(buf[headerSize:], payload)

	path := filepath.Join(t.TempDir(), "v1snap")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("v1 snapshot should load: %v", err)
	}
	if got.Seq != st.Seq || len(got.Votes) != len(st.Votes) || len(got.Acks) != 0 {
		t.Fatalf("v1 load drifted: %+v", got)
	}
	// The same payload under the v2 magic is truncated (missing ack
	// section) and must be rejected, not guessed at.
	copy(buf, fileMagic)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("v2 magic over a v1 payload should fail to load")
	}
}

func TestLoadRejectsBadAckSection(t *testing.T) {
	base := sampleState(4)
	damage := map[string]State{
		"oversized key": {N: base.N, M: base.M, Seq: 4, Votes: base.Votes,
			Acks: []AckEntry{{Key: strings.Repeat("k", maxAckKeyLen+1), Accepted: 1}}},
		"empty key": {N: base.N, M: base.M, Seq: 4, Votes: base.Votes,
			Acks: []AckEntry{{Key: "", Accepted: 1}}},
	}
	for name, st := range damage {
		t.Run(name, func(t *testing.T) {
			// Write validates nothing about acks (serve enforces the bound
			// at ingest), so the file is produced; Load must refuse it.
			path, err := Write(t.TempDir(), st)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Load(path); err == nil {
				t.Fatal("snapshot with a damaged ack section loaded without error")
			}
		})
	}
}
