// Package snapshot serializes the ranking daemon's deduplicated vote
// state into checksummed, versioned snapshot files, so recovery after a
// restart is bounded by snapshot-load plus a short journal-suffix replay
// instead of replaying every record the daemon ever acknowledged.
//
// A snapshot is a point-in-time capture of everything journal replay
// would rebuild: the deduplicated votes, the state generation counter,
// and the journal sequence number the capture covers. After a snapshot at
// sequence S is durably on disk, every journal segment wholly below S is
// redundant and may be compacted away.
//
// # On-disk format
//
//	8 bytes   magic + version ("CRWDSNP\x02")
//	4 bytes   CRC32-Castagnoli of the payload, little-endian
//	8 bytes   payload length, little-endian uint64
//	payload   varint-encoded State (see encode)
//
// Version 2 appends the batch-ack idempotency window after the votes;
// version-1 files ("CRWDSNP\x01") still load, with an empty window.
//
// Snapshot files are named snapshot.<seq> (zero-padded, so lexical and
// numeric order agree) and written atomically: temp file in the same
// directory → fsync → rename → fsync directory. A crash mid-write leaves
// only a *.tmp file, which readers ignore and the next successful write
// cleans up. Load verifies the magic, length, checksum, and every decoded
// field before returning — a corrupt snapshot is an error, never a
// partial state, a property fuzzed by FuzzSnapshotLoad.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"crowdrank/internal/crowd"
)

// fileMagic identifies a crowdrank snapshot; the final byte is the format
// version. Version 2 appends the batch-ack window after the votes;
// version 1 files (no ack window) still load, with empty Acks.
var (
	fileMagic   = []byte("CRWDSNP\x02")
	fileMagicV1 = []byte("CRWDSNP\x01")
)

// headerSize is magic (8) + CRC (4) + payload length (8).
const headerSize = 20

// Prefix names snapshot files inside the journal directory.
const Prefix = "snapshot."

// maxSnapshotBytes bounds how much Load will read: a snapshot holds at
// most one vote per (worker, pair) submission, so multi-gigabyte files
// are corruption (or hostile), not state.
const maxSnapshotBytes = 1 << 31

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// State is the daemon state a snapshot captures. It is exactly what
// journal replay up to Seq would rebuild, so recovery can substitute the
// snapshot for the replay prefix.
type State struct {
	// N is the object universe; M the worker universe. A snapshot only
	// loads into a server configured with the same universe.
	N, M int
	// Seq is the journal sequence this snapshot covers: every record with
	// sequence < Seq is folded in, and recovery replays from Seq.
	Seq uint64
	// Gen is the server's state-generation counter at capture (it keys
	// the closure cache and must survive restarts monotonically).
	Gen uint64
	// DupVotes is the cross-batch duplicate count at capture, preserved
	// so operational stats do not reset on restart.
	DupVotes int
	// Votes is the deduplicated vote state, in acceptance order.
	Votes []crowd.Vote
	// Acks is the batch idempotency window at capture, oldest first, so a
	// retried batch key is answered with its original ack across restarts
	// without re-journaling.
	Acks []AckEntry
}

// AckEntry is one remembered batch acknowledgement: the idempotency key
// and exactly what the daemon answered when the batch became durable.
type AckEntry struct {
	Key        string
	Accepted   int
	Duplicates int
	Malformed  int
	Seq        int
	TotalVotes int
}

// maxAckKeyLen bounds one stored idempotency key; serve enforces the
// same bound at ingest, so a longer key in a snapshot is corruption.
const maxAckKeyLen = 256

// Entry is one snapshot file found by List.
type Entry struct {
	Path string
	Seq  uint64
}

// name formats the snapshot filename covering seq.
func name(seq uint64) string {
	return fmt.Sprintf("%s%020d", Prefix, seq)
}

// encode serializes st as the snapshot payload.
func encode(st State) []byte {
	buf := make([]byte, 0, 64+len(st.Votes)*8)
	buf = binary.AppendUvarint(buf, uint64(st.N))
	buf = binary.AppendUvarint(buf, uint64(st.M))
	buf = binary.AppendUvarint(buf, st.Seq)
	buf = binary.AppendUvarint(buf, st.Gen)
	buf = binary.AppendUvarint(buf, uint64(st.DupVotes))
	buf = binary.AppendUvarint(buf, uint64(len(st.Votes)))
	for _, v := range st.Votes {
		buf = binary.AppendUvarint(buf, uint64(v.Worker))
		buf = binary.AppendUvarint(buf, uint64(v.I))
		buf = binary.AppendUvarint(buf, uint64(v.J))
		if v.PrefersI {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.Acks)))
	for _, a := range st.Acks {
		buf = binary.AppendUvarint(buf, uint64(len(a.Key)))
		buf = append(buf, a.Key...)
		buf = binary.AppendUvarint(buf, uint64(a.Accepted))
		buf = binary.AppendUvarint(buf, uint64(a.Duplicates))
		buf = binary.AppendUvarint(buf, uint64(a.Malformed))
		buf = binary.AppendUvarint(buf, uint64(a.Seq))
		buf = binary.AppendUvarint(buf, uint64(a.TotalVotes))
	}
	return buf
}

// decode parses a snapshot payload, validating every field: counts must
// match the bytes present, no trailing garbage, and every vote must fit
// the declared universe. Unlike journal replay — where an out-of-universe
// vote is dropped and counted — a snapshot vote that fails validation
// means the snapshot itself is untrustworthy, so decode refuses outright.
// version selects the payload layout: 1 ends after the votes, 2 appends
// the ack window.
func decode(data []byte, version byte) (State, error) {
	var st State
	rest := data
	readField := func(fieldName string) (uint64, error) {
		v, k := binary.Uvarint(rest)
		if k <= 0 {
			return 0, fmt.Errorf("snapshot: %s unreadable at byte %d", fieldName, len(data)-len(rest))
		}
		rest = rest[k:]
		return v, nil
	}
	const maxID = 1 << 31
	n, err := readField("object count")
	if err != nil {
		return st, err
	}
	m, err := readField("worker count")
	if err != nil {
		return st, err
	}
	if n == 0 || n >= maxID || m == 0 || m >= maxID {
		return st, fmt.Errorf("snapshot: implausible universe n=%d m=%d", n, m)
	}
	st.N, st.M = int(n), int(m)
	if st.Seq, err = readField("sequence"); err != nil {
		return st, err
	}
	if st.Gen, err = readField("generation"); err != nil {
		return st, err
	}
	dups, err := readField("duplicate count")
	if err != nil {
		return st, err
	}
	if dups >= maxID {
		return st, fmt.Errorf("snapshot: implausible duplicate count %d", dups)
	}
	st.DupVotes = int(dups)
	count, err := readField("vote count")
	if err != nil {
		return st, err
	}
	// Each vote takes at least 4 bytes; a count promising more than the
	// payload could hold is corruption, and bounding it caps allocation.
	if count > uint64(len(rest)) {
		return st, fmt.Errorf("snapshot: vote count %d exceeds payload capacity %d", count, len(rest))
	}
	st.Votes = make([]crowd.Vote, 0, count)
	for i := uint64(0); i < count; i++ {
		worker, err := readField("worker")
		if err != nil {
			return st, err
		}
		vi, err := readField("object i")
		if err != nil {
			return st, err
		}
		vj, err := readField("object j")
		if err != nil {
			return st, err
		}
		if len(rest) == 0 {
			return st, fmt.Errorf("snapshot: vote %d missing preference byte", i)
		}
		pref := rest[0]
		rest = rest[1:]
		if pref > 1 {
			return st, fmt.Errorf("snapshot: vote %d has preference byte %d", i, pref)
		}
		if worker >= maxID || vi >= maxID || vj >= maxID {
			return st, fmt.Errorf("snapshot: vote %d outside the id space", i)
		}
		v := crowd.Vote{Worker: int(worker), I: int(vi), J: int(vj), PrefersI: pref == 1}
		if err := v.Validate(st.N, st.M); err != nil {
			return st, fmt.Errorf("snapshot: vote %d outside the declared universe: %w", i, err)
		}
		st.Votes = append(st.Votes, v)
	}
	if version >= 2 {
		ackCount, err := readField("ack count")
		if err != nil {
			return st, err
		}
		// Each ack takes at least 6 bytes (empty key + five counters).
		if ackCount > uint64(len(rest)) {
			return st, fmt.Errorf("snapshot: ack count %d exceeds payload capacity %d", ackCount, len(rest))
		}
		st.Acks = make([]AckEntry, 0, ackCount)
		for i := uint64(0); i < ackCount; i++ {
			keyLen, err := readField("ack key length")
			if err != nil {
				return st, err
			}
			if keyLen == 0 || keyLen > maxAckKeyLen {
				return st, fmt.Errorf("snapshot: ack %d key length %d outside [1,%d]", i, keyLen, maxAckKeyLen)
			}
			if uint64(len(rest)) < keyLen {
				return st, fmt.Errorf("snapshot: ack %d key truncated", i)
			}
			a := AckEntry{Key: string(rest[:keyLen])}
			rest = rest[keyLen:]
			for _, f := range []struct {
				name string
				dst  *int
			}{
				{"ack accepted", &a.Accepted},
				{"ack duplicates", &a.Duplicates},
				{"ack malformed", &a.Malformed},
				{"ack sequence", &a.Seq},
				{"ack total votes", &a.TotalVotes},
			} {
				v, err := readField(f.name)
				if err != nil {
					return st, err
				}
				if v >= maxID {
					return st, fmt.Errorf("snapshot: implausible %s %d", f.name, v)
				}
				*f.dst = int(v)
			}
			st.Acks = append(st.Acks, a)
		}
	}
	if len(rest) != 0 {
		return st, fmt.Errorf("snapshot: %d trailing bytes", len(rest))
	}
	return st, nil
}

// Encode serializes st into the complete snapshot file format — magic,
// checksum, length, payload — exactly the bytes Write persists. The
// replication layer uses it to ship a leader's state to a bootstrapping
// follower over the wire without first spilling it to the leader's disk;
// the receiver validates and lands the bytes with InstallRaw.
func Encode(st State) []byte {
	payload := encode(st)
	buf := make([]byte, headerSize+len(payload))
	copy(buf, fileMagic)
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint64(buf[12:20], uint64(len(payload)))
	copy(buf[headerSize:], payload)
	return buf
}

// Decode validates data as a complete snapshot file (as produced by Encode
// or read back from disk) and returns the State it carries. It applies the
// same integrity and universe checks as Load.
func Decode(data []byte) (State, error) {
	var st State
	if len(data) < headerSize {
		return st, fmt.Errorf("snapshot: %d bytes is too short for a snapshot header", len(data))
	}
	var version byte
	switch {
	case string(data[:8]) == string(fileMagic):
		version = 2
	case string(data[:8]) == string(fileMagicV1):
		version = 1
	default:
		return st, fmt.Errorf("snapshot: bad magic %q", data[:8])
	}
	want := binary.LittleEndian.Uint32(data[8:12])
	length := binary.LittleEndian.Uint64(data[12:20])
	payload := data[headerSize:]
	if uint64(len(payload)) != length {
		return st, fmt.Errorf("snapshot: payload is %d bytes, header promises %d", len(payload), length)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return st, fmt.Errorf("snapshot: checksum mismatch: recorded %08x, computed %08x", want, got)
	}
	return decode(payload, version)
}

// InstallRaw validates data as a complete snapshot file and atomically
// lands it in dir under the canonical snapshot.<seq> name, returning the
// final path and the decoded state. It is the receiving half of a
// replication bootstrap: the follower installs the leader's encoded
// snapshot, then opens its journal with ReplayFrom at the returned
// state's Seq. Damaged bytes are refused before anything touches disk.
func InstallRaw(dir string, data []byte) (string, State, error) {
	st, err := Decode(data)
	if err != nil {
		return "", st, err
	}
	if int64(len(data)) > maxSnapshotBytes {
		return "", st, fmt.Errorf("snapshot: %d bytes is beyond the plausible maximum", len(data))
	}
	path, err := writeRaw(dir, name(st.Seq), data)
	if err != nil {
		return "", st, err
	}
	return path, st, nil
}

// Write atomically persists st into dir as snapshot.<seq> and returns the
// final path. The sequence of temp-write → fsync → rename → directory
// fsync guarantees that after Write returns nil the snapshot survives
// power loss, and that a crash at any earlier point leaves the previous
// snapshots untouched. Leftover *.tmp files from crashed writers are
// removed opportunistically.
func Write(dir string, st State) (string, error) {
	return writeRaw(dir, name(st.Seq), Encode(st))
}

// writeRaw lands buf in dir under filename via the atomic temp → fsync →
// rename → directory-fsync dance shared by Write and InstallRaw.
func writeRaw(dir, filename string, buf []byte) (string, error) {
	final := filepath.Join(dir, filename)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("snapshot: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(buf); err != nil {
		//lint:ignore errcheck error-path cleanup of the abandoned temp file; the write error is already being returned
		_ = f.Close()
		_ = os.Remove(tmp)
		return "", fmt.Errorf("snapshot: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errcheck error-path cleanup of the abandoned temp file; the sync error is already being returned
		_ = f.Close()
		_ = os.Remove(tmp)
		return "", fmt.Errorf("snapshot: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("snapshot: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("snapshot: publishing %s: %w", final, err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	removeStaleTmp(dir)
	return final, nil
}

// Load reads and fully validates the snapshot at path. Any damage —
// wrong magic, truncation, checksum mismatch, undecodable or
// out-of-universe state — is an error; Load never returns a partial or
// guessed State.
func Load(path string) (State, error) {
	var st State
	info, err := os.Stat(path)
	if err != nil {
		return st, fmt.Errorf("snapshot: stat %s: %w", path, err)
	}
	if info.Size() > maxSnapshotBytes {
		return st, fmt.Errorf("snapshot: %s is %d bytes, beyond the plausible maximum", path, info.Size())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return st, fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	st, err = Decode(data)
	if err != nil {
		return st, fmt.Errorf("%w (in %s)", err, path)
	}
	return st, nil
}

// List returns the snapshot files in dir, newest (highest covered
// sequence) first. Files still mid-write (*.tmp) and unrelated names are
// ignored. A missing directory lists as empty.
func List(dir string) ([]Entry, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading directory %s: %w", dir, err)
	}
	var out []Entry
	for _, e := range entries {
		nm := e.Name()
		if e.IsDir() || !strings.HasPrefix(nm, Prefix) || strings.HasSuffix(nm, ".tmp") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(nm, Prefix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, Entry{Path: filepath.Join(dir, nm), Seq: seq})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq > out[b].Seq })
	return out, nil
}

// Prune deletes all but the keep newest snapshots in dir and returns the
// removed paths. The deletions are made durable with a directory fsync.
func Prune(dir string, keep int) ([]string, error) {
	if keep < 1 {
		keep = 1
	}
	entries, err := List(dir)
	if err != nil {
		return nil, err
	}
	if len(entries) <= keep {
		return nil, nil
	}
	var removed []string
	for _, e := range entries[keep:] {
		if err := os.Remove(e.Path); err != nil {
			return removed, fmt.Errorf("snapshot: pruning %s: %w", e.Path, err)
		}
		removed = append(removed, e.Path)
	}
	if err := syncDir(dir); err != nil {
		return removed, err
	}
	return removed, nil
}

// DiskUsage sums the sizes of all snapshot files in dir (including any
// in-flight *.tmp), for operational reporting.
func DiskUsage(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), Prefix) {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// removeStaleTmp clears crashed writers' leftovers; best-effort, errors
// are ignored because a stray tmp file is harmless to correctness.
func removeStaleTmp(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		nm := e.Name()
		if !e.IsDir() && strings.HasPrefix(nm, Prefix) && strings.HasSuffix(nm, ".tmp") {
			_ = os.Remove(filepath.Join(dir, nm))
		}
	}
}

// syncDir fsyncs dir so renames and removals are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snapshot: opening %s to sync: %w", dir, err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("snapshot: syncing directory %s: %w", dir, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("snapshot: closing directory %s: %w", dir, closeErr)
	}
	return nil
}
