package snapshot

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"crowdrank/internal/crowd"
)

func transferState() State {
	return State{
		N: 5, M: 3, Seq: 42, Gen: 7, DupVotes: 1,
		Votes: []crowd.Vote{
			{Worker: 0, I: 1, J: 2, PrefersI: true},
			{Worker: 2, I: 0, J: 4, PrefersI: false},
		},
		Acks: []AckEntry{
			{Key: "k-1", Accepted: 2, Seq: 41, TotalVotes: 2},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := transferState()
	data := Encode(st)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, st)
	}
	// Encode must produce exactly the bytes Write persists.
	dir := t.TempDir()
	path, err := Write(dir, st)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != string(data) {
		t.Fatal("Encode bytes differ from what Write persists")
	}
}

func TestDecodeRefusesDamage(t *testing.T) {
	data := Encode(transferState())
	cases := map[string][]byte{
		"short":        data[:10],
		"bad magic":    append([]byte("NOTASNAP"), data[8:]...),
		"flipped byte": append(append([]byte{}, data[:len(data)-1]...), data[len(data)-1]^0xff),
		"truncated":    data[:len(data)-3],
	}
	for name, d := range cases {
		if _, err := Decode(d); err == nil {
			t.Errorf("Decode(%s) should fail", name)
		}
	}
}

func TestInstallRawLandsLoadableSnapshot(t *testing.T) {
	st := transferState()
	dir := t.TempDir()
	path, got, err := InstallRaw(dir, Encode(st))
	if err != nil {
		t.Fatalf("InstallRaw: %v", err)
	}
	if got.Seq != st.Seq {
		t.Fatalf("InstallRaw decoded seq %d, want %d", got.Seq, st.Seq)
	}
	if filepath.Base(path) != name(st.Seq) {
		t.Fatalf("InstallRaw landed %s, want canonical %s", filepath.Base(path), name(st.Seq))
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("Load after InstallRaw: %v", err)
	}
	if !reflect.DeepEqual(loaded, st) {
		t.Fatalf("installed snapshot diverged:\n got %+v\nwant %+v", loaded, st)
	}
	entries, err := List(dir)
	if err != nil || len(entries) != 1 || entries[0].Seq != st.Seq {
		t.Fatalf("List after install: %v %v", entries, err)
	}
}

func TestInstallRawRefusesDamageBeforeTouchingDisk(t *testing.T) {
	dir := t.TempDir()
	data := Encode(transferState())
	data[len(data)-1] ^= 0xff
	if _, _, err := InstallRaw(dir, data); err == nil {
		t.Fatal("InstallRaw should refuse a corrupt snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("refused install left %d files behind", len(entries))
	}
}
