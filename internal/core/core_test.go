package core

import (
	"math/rand/v2"
	"testing"

	"crowdrank/internal/crowd"
	"crowdrank/internal/graph"
	"crowdrank/internal/kendall"
	"crowdrank/internal/platform"
	"crowdrank/internal/search"
	"crowdrank/internal/simulate"
	"crowdrank/internal/taskgen"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 61)) }

// simulateRound produces a complete simulated crowdsourcing round.
func simulateRound(t testing.TB, n, m, w int, ratio float64, dist simulate.QualityDistribution,
	level simulate.QualityLevel, seed uint64) ([]crowd.Vote, []int) {
	t.Helper()
	rng := newRNG(seed)
	l, err := taskgen.PairsForRatio(n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := taskgen.Generate(n, l, rng)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := simulate.GroundTruth(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := simulate.NewCrowd(m, dist, level, rng)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := simulate.NewGroundTruthOracle(pool, truth, rng)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := platform.PackHITs(plan.Pairs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	assigned, err := platform.AssignWorkers(hits, m, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	round, err := platform.RunNonInteractive(hits, assigned, oracle, 1)
	if err != nil {
		t.Fatal(err)
	}
	return round.Votes, truth
}

func TestInferEndToEndAccuracy(t *testing.T) {
	// Integration: the full pipeline must hit the paper-scale accuracy
	// floors under medium-quality workers.
	tests := []struct {
		name     string
		n        int
		ratio    float64
		dist     simulate.QualityDistribution
		minAccur float64
	}{
		{"gaussian n=50 r=0.3", 50, 0.3, simulate.Gaussian, 0.85},
		{"gaussian n=100 r=0.1", 100, 0.1, simulate.Gaussian, 0.85},
		{"uniform n=50 r=0.5", 50, 0.5, simulate.Uniform, 0.85},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			votes, truth := simulateRound(t, tc.n, 30, 10, tc.ratio, tc.dist, simulate.MediumQuality, 77)
			res, err := Infer(tc.n, 30, votes, DefaultOptions(), newRNG(5))
			if err != nil {
				t.Fatal(err)
			}
			acc, err := kendall.Accuracy(res.Ranking, truth)
			if err != nil {
				t.Fatal(err)
			}
			if acc < tc.minAccur {
				t.Errorf("accuracy = %v, want >= %v", acc, tc.minAccur)
			}
			if res.Timings.Total() <= 0 {
				t.Error("timings not recorded")
			}
			if res.TruthIterations < 1 {
				t.Error("truth iterations not recorded")
			}
		})
	}
}

func TestInferDeterministicUnderFixedSeed(t *testing.T) {
	votes, _ := simulateRound(t, 30, 20, 8, 0.3, simulate.Gaussian, simulate.MediumQuality, 11)
	a, err := Infer(30, 20, votes, DefaultOptions(), newRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Infer(30, 20, votes, DefaultOptions(), newRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ranking {
		if a.Ranking[i] != b.Ranking[i] {
			t.Fatalf("non-deterministic ranking: %v vs %v", a.Ranking, b.Ranking)
		}
	}
}

func TestInferSearcherSelection(t *testing.T) {
	votes, _ := simulateRound(t, 10, 10, 5, 0.5, simulate.Gaussian, simulate.HighQuality, 13)
	// Auto on a small instance resolves to Held-Karp.
	res, err := Infer(10, 10, votes, DefaultOptions(), newRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.SearcherUsed != SearcherHeldKarp {
		t.Errorf("auto on n=10 used %v", res.SearcherUsed)
	}
	// Explicit searchers all work and agree on the exact optimum.
	var exactLog float64
	for idx, s := range []Searcher{SearcherHeldKarp, SearcherBruteForce, SearcherTAPS} {
		opts := DefaultOptions()
		opts.Searcher = s
		if s == SearcherTAPS || s == SearcherBruteForce {
			// TAPS all-pairs is limited to n=8; use a smaller instance.
			continue
		}
		r, err := Infer(10, 10, votes, opts, newRNG(2))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if idx == 0 {
			exactLog = r.LogProb
		} else if r.LogProb != exactLog {
			t.Errorf("%v disagrees with Held-Karp: %v vs %v", s, r.LogProb, exactLog)
		}
	}
	// SAPS runs on the same instance.
	opts := DefaultOptions()
	opts.Searcher = SearcherSAPS
	if _, err := Infer(10, 10, votes, opts, newRNG(3)); err != nil {
		t.Fatalf("SAPS: %v", err)
	}
}

func TestInferExactSearchersAgreeSmall(t *testing.T) {
	votes, _ := simulateRound(t, 7, 8, 4, 0.8, simulate.Gaussian, simulate.MediumQuality, 17)
	logs := map[Searcher]float64{}
	for _, s := range []Searcher{SearcherHeldKarp, SearcherBruteForce, SearcherTAPS} {
		opts := DefaultOptions()
		opts.Searcher = s
		r, err := Infer(7, 8, votes, opts, newRNG(4))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		logs[s] = r.LogProb
	}
	// Summation association differs between searchers, so allow float
	// round-off at the last digit.
	const tol = 1e-9
	hk := logs[SearcherHeldKarp]
	if diff := logs[SearcherBruteForce] - hk; diff > tol || diff < -tol {
		t.Errorf("exact searchers disagree: %v", logs)
	}
	if diff := logs[SearcherTAPS] - hk; diff > tol || diff < -tol {
		t.Errorf("exact searchers disagree: %v", logs)
	}
}

func TestInferValidation(t *testing.T) {
	votes := []crowd.Vote{{Worker: 0, I: 0, J: 1, PrefersI: true}}
	if _, err := Infer(2, 1, votes, DefaultOptions(), nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := Infer(2, 1, nil, DefaultOptions(), newRNG(1)); err == nil {
		t.Error("no votes should fail")
	}
	opts := DefaultOptions()
	opts.Searcher = Searcher(99)
	if _, err := Infer(2, 1, votes, opts, newRNG(1)); err == nil {
		t.Error("unknown searcher should fail")
	}
}

func TestInferAdversarialWorkersSuppressed(t *testing.T) {
	// 8 honest workers + 4 always-wrong workers. The pipeline must still
	// recover the order and assign the adversaries lower quality.
	rng := newRNG(23)
	n := 20
	l, err := taskgen.PairsForRatio(n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := taskgen.Generate(n, l, rng)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := simulate.GroundTruth(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, n)
	for r, o := range truth {
		pos[o] = r
	}
	var votes []crowd.Vote
	const honest, total = 8, 12
	for _, pr := range plan.Pairs() {
		truthPref := pos[pr.I] < pos[pr.J]
		for w := 0; w < total; w++ {
			prefers := truthPref
			if w >= honest {
				prefers = !truthPref
			}
			votes = append(votes, crowd.Vote{Worker: w, I: pr.I, J: pr.J, PrefersI: prefers})
		}
	}
	res, err := Infer(n, total, votes, DefaultOptions(), newRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := kendall.Accuracy(res.Ranking, truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("accuracy with adversaries = %v", acc)
	}
	for w := honest; w < total; w++ {
		if res.WorkerQuality[w] >= res.WorkerQuality[0] {
			t.Errorf("adversary %d quality %v >= honest quality %v",
				w, res.WorkerQuality[w], res.WorkerQuality[0])
		}
	}
}

func TestInferObjectiveOption(t *testing.T) {
	votes, _ := simulateRound(t, 12, 10, 5, 0.6, simulate.Gaussian, simulate.HighQuality, 31)
	opts := DefaultOptions()
	opts.Objective = 99
	if _, err := Infer(12, 10, votes, opts, newRNG(1)); err == nil {
		t.Error("invalid objective should fail in the searcher")
	}
}

func TestInferFromClosure(t *testing.T) {
	g, err := graph.NewPreferenceGraph(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if err := g.SetWeight(i, j, 0.9); err != nil {
				t.Fatal(err)
			}
			if err := g.SetWeight(j, i, 0.1); err != nil {
				t.Fatal(err)
			}
		}
	}
	opts := DefaultOptions()
	for _, s := range []Searcher{SearcherAuto, SearcherSAPS, SearcherTAPS, SearcherHeldKarp, SearcherBruteForce} {
		r, err := InferFromClosure(g, s, opts.SAPS, newRNG(7))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		for i, v := range r.Path {
			if v != i {
				t.Fatalf("%v: path %v should be identity", s, r.Path)
			}
		}
	}
	if _, err := InferFromClosure(g, Searcher(99), opts.SAPS, newRNG(7)); err == nil {
		t.Error("unknown searcher should fail")
	}
}

func TestSearcherString(t *testing.T) {
	names := map[Searcher]string{
		SearcherAuto: "auto", SearcherSAPS: "saps", SearcherTAPS: "taps",
		SearcherHeldKarp: "heldkarp", SearcherBruteForce: "bruteforce",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if Searcher(42).String() == "" {
		t.Error("unknown searcher should still print")
	}
}

func TestSAPSMatchesBranchAndBoundOnRealClosure(t *testing.T) {
	// On an actual pipeline closure at n=30 (beyond Held-Karp's reach) the
	// branch-and-bound proves the optimum; SAPS must match it or fall only
	// marginally short.
	votes, _ := simulateRound(t, 30, 20, 10, 0.4, simulate.Gaussian, simulate.MediumQuality, 555)
	cl, err := BuildClosure(30, 20, votes, DefaultOptions(), newRNG(556))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := search.BranchAndBound(cl.Closure, search.BranchAndBoundParams{})
	if err != nil {
		t.Fatalf("branch and bound on a real closure should prove optimality: %v", err)
	}
	params := DefaultOptions().SAPS
	params.Iterations = 400
	sa, err := search.SAPS(cl.Closure, params, newRNG(557))
	if err != nil {
		t.Fatal(err)
	}
	if sa.LogProb > exact.LogProb+1e-9 {
		t.Fatalf("SAPS %v beat the proven optimum %v", sa.LogProb, exact.LogProb)
	}
	// SAPS is a heuristic; allow a small optimality gap (the closure's
	// total log-mass is in the hundreds).
	gap := exact.LogProb - sa.LogProb
	if gap > 5.0 {
		t.Errorf("SAPS trails the optimum by %v log units", gap)
	}
}
