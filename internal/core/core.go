// Package core glues the paper's result-inference pipeline (Section V) into
// a single call: truth discovery (Step 1), preference smoothing (Step 2),
// preference propagation into the transitive closure (Step 3), and
// best-ranking search (Step 4). It records per-step wall-clock timings —
// the breakdown Figure 4 discusses — and per-step diagnostics such as the
// 1-edge count and truth-discovery iterations.
package core

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/graph"
	"crowdrank/internal/invariant"
	"crowdrank/internal/propagate"
	"crowdrank/internal/search"
	"crowdrank/internal/smooth"
	"crowdrank/internal/truth"
)

// Searcher selects the Step 4 algorithm.
type Searcher int

const (
	// SearcherAuto picks an exact method for small instances (Held-Karp up
	// to 16 objects) and SAPS beyond.
	SearcherAuto Searcher = iota
	// SearcherSAPS forces the simulated-annealing path search.
	SearcherSAPS
	// SearcherTAPS forces the paper's exact threshold algorithm
	// (factorial space; n <= ~9).
	SearcherTAPS
	// SearcherHeldKarp forces the exact subset DP (n <= ~20).
	SearcherHeldKarp
	// SearcherBruteForce forces full enumeration (n <= ~10).
	SearcherBruteForce
	// SearcherBranchBound forces the exact branch-and-bound for the
	// all-pairs objective; effective on near-consistent closures well
	// beyond Held-Karp's n <= 20, but refuses cycle-heavy instances.
	SearcherBranchBound
)

func (s Searcher) String() string {
	switch s {
	case SearcherAuto:
		return "auto"
	case SearcherSAPS:
		return "saps"
	case SearcherTAPS:
		return "taps"
	case SearcherHeldKarp:
		return "heldkarp"
	case SearcherBruteForce:
		return "bruteforce"
	case SearcherBranchBound:
		return "branchbound"
	default:
		return fmt.Sprintf("Searcher(%d)", int(s))
	}
}

// autoExactLimit is the largest instance SearcherAuto solves exactly.
const autoExactLimit = 16

// Options configures the full pipeline. The zero value is not usable; call
// DefaultOptions and adjust.
type Options struct {
	Truth     truth.Params
	Smooth    smooth.Params
	Propagate propagate.Params
	SAPS      search.SAPSParams
	Searcher  Searcher
	// Objective selects the Step 4 path-preference reading for every
	// searcher (see search.Objective); it overrides SAPS.Objective.
	Objective search.Objective
	// PolishSweeps, when positive, refines the Step 4 result with up to
	// this many insertion-move local-search sweeps (search.InsertionPolish)
	// — a strictly larger neighborhood than SAPS's swaps. 0 disables.
	PolishSweeps int
}

// DefaultOptions returns the pipeline configuration used throughout the
// experiment reproduction.
func DefaultOptions() Options {
	return Options{
		Truth:     truth.DefaultParams(),
		Smooth:    smooth.DefaultParams(),
		Propagate: propagate.DefaultParams(),
		SAPS:      search.DefaultSAPSParams(),
		Searcher:  SearcherAuto,
		Objective: search.ObjectiveAllPairs,
	}
}

// StepTimings records the elapsed time of each inference step. Every
// field is measured with time.Since over a time.Now start, so the values
// carry the monotonic reading and survive wall-clock jumps (NTP steps)
// mid-inference.
type StepTimings struct {
	TruthDiscovery time.Duration
	Smoothing      time.Duration
	Propagation    time.Duration
	Search         time.Duration
}

// Total returns the end-to-end inference time.
func (t StepTimings) Total() time.Duration {
	return t.TruthDiscovery + t.Smoothing + t.Propagation + t.Search
}

// Result is the pipeline output.
type Result struct {
	// Ranking is the inferred full ranking, best-first.
	Ranking []int
	// LogProb is the preference log-probability of the winning Hamiltonian
	// path over the normalized closure.
	LogProb float64
	// WorkerQuality holds the Step 1 quality estimates, indexed by worker.
	WorkerQuality []float64
	// TruthIterations and TruthConverged report the Step 1 loop behavior.
	TruthIterations int
	TruthConverged  bool
	// OneEdges is the number of unanimous edges Step 2 smoothed.
	OneEdges int
	// UninformedPairs counts pairs that fell back to 0.5/0.5 in Step 3.
	UninformedPairs int
	// SearcherUsed reports which Step 4 algorithm actually ran.
	SearcherUsed Searcher
	// Timings is the per-step wall-clock breakdown.
	Timings StepTimings
}

// Infer runs the four-step inference pipeline over the votes of m workers
// on n objects. rng drives smoothing draws and SAPS; a fixed source yields
// a reproducible result.
func Infer(n, m int, votes []crowd.Vote, opts Options, rng *rand.Rand) (*Result, error) {
	return InferContext(context.Background(), n, m, votes, opts, rng)
}

// InferContext is Infer with cancellation: ctx is checked between pipeline
// steps and polled inside the long-running Step 4 searchers (SAPS and
// branch-and-bound), so an expired deadline or an explicit cancel abandons
// inference promptly with ctx's error.
func InferContext(ctx context.Context, n, m int, votes []crowd.Vote, opts Options, rng *rand.Rand) (*Result, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: nil random source")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 1: truth discovery.
	start := time.Now()
	discovered, err := truth.Discover(n, m, votes, opts.Truth)
	if err != nil {
		return nil, fmt.Errorf("core: step 1 (truth discovery): %w", err)
	}
	gp, err := truth.BuildPreferenceGraph(n, discovered.Preference)
	if err != nil {
		return nil, fmt.Errorf("core: step 1 (preference graph): %w", err)
	}
	res := &Result{
		WorkerQuality:   discovered.Quality,
		TruthIterations: discovered.Iterations,
		TruthConverged:  discovered.Converged,
	}
	res.Timings.TruthDiscovery = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 2: preference smoothing.
	start = time.Now()
	workersByPair := make(map[graph.Pair][]int)
	for _, v := range votes {
		p := v.Pair()
		workersByPair[p] = append(workersByPair[p], v.Worker)
	}
	smoothed, smoothStats, err := smooth.Smooth(gp, discovered.Quality, workersByPair, rng, opts.Smooth)
	if err != nil {
		return nil, fmt.Errorf("core: step 2 (smoothing): %w", err)
	}
	res.OneEdges = smoothStats.OneEdges
	res.Timings.Smoothing = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 3: preference propagation into the normalized closure.
	start = time.Now()
	closure, propStats, err := propagate.Closure(smoothed, opts.Propagate)
	if err != nil {
		return nil, fmt.Errorf("core: step 3 (propagation): %w", err)
	}
	res.UninformedPairs = propStats.UninformedPairs
	res.Timings.Propagation = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 4: best-ranking search.
	start = time.Now()
	searcher := opts.Searcher
	if searcher == SearcherAuto {
		if n <= autoExactLimit {
			searcher = SearcherHeldKarp
		} else {
			searcher = SearcherSAPS
		}
	}
	var sr *search.Result
	switch searcher {
	case SearcherSAPS:
		sapsParams := opts.SAPS
		sapsParams.Objective = opts.Objective
		sr, err = search.SAPSContext(ctx, closure, sapsParams, rng)
	case SearcherTAPS:
		var tr *search.TAPSResult
		tr, err = search.TAPS(closure, search.TAPSParams{Objective: opts.Objective})
		if err == nil {
			sr = &tr.Result
		}
	case SearcherHeldKarp:
		sr, err = search.HeldKarp(closure, 0, opts.Objective)
	case SearcherBruteForce:
		sr, err = search.BruteForce(closure, 0, opts.Objective)
	case SearcherBranchBound:
		if opts.Objective != search.ObjectiveAllPairs {
			return nil, fmt.Errorf("core: branch-and-bound supports only the all-pairs objective")
		}
		sr, err = search.BranchAndBoundContext(ctx, closure, search.BranchAndBoundParams{})
	default:
		return nil, fmt.Errorf("core: unknown searcher %d", int(searcher))
	}
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr // cancellation, not a search failure
		}
		return nil, fmt.Errorf("core: step 4 (%v search): %w", searcher, err)
	}
	if opts.PolishSweeps > 0 {
		polished, err := search.InsertionPolish(closure, sr.Path, opts.Objective, opts.PolishSweeps)
		if err != nil {
			return nil, fmt.Errorf("core: step 4 (insertion polish): %w", err)
		}
		sr = polished
	}
	// Stage-boundary assertion (no-op unless built with
	// -tags crowdrank_invariants): every searcher must return a
	// permutation of the n objects.
	invariant.CheckRanking(n, sr.Path)
	res.SearcherUsed = searcher
	res.Ranking = sr.Path
	res.LogProb = sr.LogProb
	res.Timings.Search = time.Since(start)
	return res, nil
}

// ClosureResult carries the Step 1-3 output for callers that want to run
// multiple Step 4 searchers over identical inputs.
type ClosureResult struct {
	Closure         *graph.PreferenceGraph
	WorkerQuality   []float64
	TruthIterations int
	TruthConverged  bool
	OneEdges        int
	UninformedPairs int
	// Timings breaks the build down by step (Search stays zero: Step 4
	// is the caller's). The serving layer feeds these into its per-stage
	// latency histograms.
	Timings StepTimings
}

// BuildClosure runs Steps 1-3 only (truth discovery, smoothing,
// propagation) and returns the complete normalized closure together with
// the per-step diagnostics. rng drives the smoothing draws.
func BuildClosure(n, m int, votes []crowd.Vote, opts Options, rng *rand.Rand) (*ClosureResult, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: nil random source")
	}
	var timings StepTimings
	start := time.Now()
	discovered, err := truth.Discover(n, m, votes, opts.Truth)
	if err != nil {
		return nil, fmt.Errorf("core: step 1 (truth discovery): %w", err)
	}
	gp, err := truth.BuildPreferenceGraph(n, discovered.Preference)
	if err != nil {
		return nil, fmt.Errorf("core: step 1 (preference graph): %w", err)
	}
	timings.TruthDiscovery = time.Since(start)
	start = time.Now()
	workersByPair := make(map[graph.Pair][]int)
	for _, v := range votes {
		p := v.Pair()
		workersByPair[p] = append(workersByPair[p], v.Worker)
	}
	smoothed, smoothStats, err := smooth.Smooth(gp, discovered.Quality, workersByPair, rng, opts.Smooth)
	if err != nil {
		return nil, fmt.Errorf("core: step 2 (smoothing): %w", err)
	}
	timings.Smoothing = time.Since(start)
	start = time.Now()
	closure, propStats, err := propagate.Closure(smoothed, opts.Propagate)
	if err != nil {
		return nil, fmt.Errorf("core: step 3 (propagation): %w", err)
	}
	timings.Propagation = time.Since(start)
	return &ClosureResult{
		Closure:         closure,
		WorkerQuality:   discovered.Quality,
		TruthIterations: discovered.Iterations,
		TruthConverged:  discovered.Converged,
		OneEdges:        smoothStats.OneEdges,
		UninformedPairs: propStats.UninformedPairs,
		Timings:         timings,
	}, nil
}

// InferFromClosure runs only Step 4 over an existing complete closure,
// allowing callers (examples, ablations) to compare searchers on identical
// inputs. The objective is taken from sapsParams.Objective for every
// searcher.
func InferFromClosure(closure *graph.PreferenceGraph, searcher Searcher, sapsParams search.SAPSParams, rng *rand.Rand) (*search.Result, error) {
	obj := sapsParams.Objective
	switch searcher {
	case SearcherSAPS:
		return search.SAPS(closure, sapsParams, rng)
	case SearcherTAPS:
		tr, err := search.TAPS(closure, search.TAPSParams{Objective: obj})
		if err != nil {
			return nil, err
		}
		return &tr.Result, nil
	case SearcherHeldKarp:
		return search.HeldKarp(closure, 0, obj)
	case SearcherBruteForce:
		return search.BruteForce(closure, 0, obj)
	case SearcherBranchBound:
		if obj != search.ObjectiveAllPairs {
			return nil, fmt.Errorf("core: branch-and-bound supports only the all-pairs objective")
		}
		return search.BranchAndBound(closure, search.BranchAndBoundParams{})
	case SearcherAuto:
		if closure.N() <= autoExactLimit {
			return search.HeldKarp(closure, 0, obj)
		}
		return search.SAPS(closure, sapsParams, rng)
	default:
		return nil, fmt.Errorf("core: unknown searcher %d", int(searcher))
	}
}
