// Package client is the resilient ingestion client for the crowdrankd
// daemon: capped exponential backoff with full jitter, Retry-After
// honoring on 429/503, per-attempt timeouts, context cancellation, and a
// client-generated idempotency key on every vote batch.
//
// The paper's non-interactive setting spends the budget B in one round,
// so a vote batch that is lost (ack dropped by the network) or applied
// twice (blind retry) corrupts the budget→accuracy trade-off the daemon
// exists to serve. The client therefore never retries blindly: each
// SubmitVotes call draws one idempotency key and replays it on every
// attempt, and the daemon's ack window makes the retry an ack-without-
// reapply. That makes EVERY failure retryable — including ambiguous ones
// like a reset mid-response, where the batch may or may not have
// committed — which is exactly the case a keyless client cannot handle.
//
// Backoff and key generation draw from a seeded PCG stream per the repo's
// determinism conventions: a fixed Config.Seed reproduces the same key
// and jitter sequence, which the chaos soak relies on.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/obs"
)

// Replication protocol headers (mirroring internal/replica): followers
// reject ingest with a 503 carrying the leader hint, and every node
// stamps its fencing epoch on responses. The client replays the highest
// epoch it has seen on each request — that echo is what fences a deposed
// leader that missed the promotion.
const (
	leaderHeader = "X-Crowdrank-Leader"
	epochHeader  = "X-Crowdrank-Epoch"
)

// Config configures a Client. Zero-valued fields take the documented
// defaults; only BaseURL is mandatory.
type Config struct {
	// BaseURL is the daemon's base URL, e.g. "http://127.0.0.1:8077".
	BaseURL string

	// Seed drives idempotency-key generation and backoff jitter. 0 draws a
	// time-derived seed (matching the daemon's own convention); fix it for
	// reproducible retry schedules in tests.
	Seed uint64

	// MaxAttempts bounds tries per call, first attempt included. Default 8.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff cap; each further retry
	// doubles it up to MaxBackoff, and the actual sleep is drawn uniformly
	// from [0, cap) ("full jitter"). Defaults 100ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds each individual HTTP attempt; the surrounding
	// context still bounds the whole call. Default 10s.
	AttemptTimeout time.Duration
	// MaxRetryAfter caps how long a server-sent Retry-After header can
	// stretch one backoff, so a confused server cannot park the client.
	// Default 30s.
	MaxRetryAfter time.Duration

	// HTTPClient issues the requests; nil uses a plain &http.Client{}.
	// Per-attempt timeouts come from AttemptTimeout, not HTTPClient.Timeout.
	HTTPClient *http.Client
	// Metrics receives client counters (attempts, retries by reason,
	// replayed acks); nil creates a private registry.
	Metrics *obs.Registry
	// Logf receives retry decisions; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if strings.TrimSpace(c.BaseURL) == "" {
		return c, fmt.Errorf("client: BaseURL is required")
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = 10 * time.Second
	}
	if c.MaxRetryAfter == 0 {
		c.MaxRetryAfter = 30 * time.Second
	}
	if c.MaxAttempts < 1 || c.BaseBackoff < 0 || c.MaxBackoff < c.BaseBackoff ||
		c.AttemptTimeout <= 0 || c.MaxRetryAfter < 0 {
		return c, fmt.Errorf("client: retry settings out of range: attempts=%d base=%v max=%v attempt_timeout=%v",
			c.MaxAttempts, c.BaseBackoff, c.MaxBackoff, c.AttemptTimeout)
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Seed == 0 {
		c.Seed = uint64(time.Now().UnixNano())
	}
	return c, nil
}

// Ack is the daemon's acknowledgement of one durable vote batch; it
// mirrors the POST /votes response body.
type Ack struct {
	Accepted   int  `json:"accepted"`
	Duplicates int  `json:"duplicates"`
	Malformed  int  `json:"malformed"`
	Seq        int  `json:"seq"`
	TotalVotes int  `json:"total_votes"`
	Replayed   bool `json:"replayed,omitempty"`

	// Key is the idempotency key the batch was submitted under (set by the
	// client, not part of the wire body).
	Key string `json:"-"`
}

// Ranking mirrors the GET /rank response body.
type Ranking struct {
	Ranking   []int   `json:"ranking"`
	LogProb   float64 `json:"log_prob"`
	Algorithm string  `json:"algorithm"`
	Degraded  bool    `json:"degraded"`
	Votes     int     `json:"votes"`
	Seed      uint64  `json:"seed"`
}

// StatusError is a non-retryable HTTP failure: the daemon answered, and
// the answer means "do not try this again" (4xx other than 429).
type StatusError struct {
	Status int
	Body   string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: daemon answered %d: %s", e.Status, strings.TrimSpace(e.Body))
}

// LeaderRedirect reports that the addressed node is a warm-standby
// follower: the request was NOT applied there, and Leader is the node's
// best hint for where the leader is. A Pool follows the hint
// automatically; a single-endpoint Client surfaces it immediately (no
// point retrying a follower) so the caller can re-point.
type LeaderRedirect struct {
	Leader string
	Body   string
}

func (e *LeaderRedirect) Error() string {
	return fmt.Sprintf("client: node is a follower; leader hint %q: %s", e.Leader, strings.TrimSpace(e.Body))
}

// metrics is the client's counter bundle.
type cmetrics struct {
	attempts     *obs.Counter
	retryNet     *obs.Counter
	retryStatus  *obs.Counter
	timeouts     *obs.Counter
	replayedAcks *obs.Counter
	exhausted    *obs.Counter
}

// Client submits vote batches to one crowdrankd daemon. Safe for
// concurrent use. Create with New.
type Client struct {
	cfg  Config
	logf func(string, ...any)
	met  cmetrics

	// rngMu guards rng: key generation and jitter draws interleave across
	// goroutines but each draw stays atomic, keeping the stream valid.
	rngMu sync.Mutex
	rng   *rand.Rand

	// epoch ratchets the highest replication epoch seen on any response
	// and is echoed on every request. A Pool points all its per-endpoint
	// clients at one shared counter, so an epoch learned from the new
	// leader immediately fences the old one on the next contact.
	epoch *atomic.Uint64

	// sleep is the backoff wait, a seam so tests assert on the schedule
	// instead of actually sleeping. It must honor ctx.
	sleep func(ctx context.Context, d time.Duration) error
}

// New validates cfg and returns a ready Client.
func New(cfg Config) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Client{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x636c69656e74)), // "client"
		met: cmetrics{
			attempts:     cfg.Metrics.Counter("crowdrank_client_attempts_total", "HTTP attempts issued, first tries included."),
			retryNet:     cfg.Metrics.Counter("crowdrank_client_retries_total", "Retries by what failed.", obs.L("reason", "network")),
			retryStatus:  cfg.Metrics.Counter("crowdrank_client_retries_total", "Retries by what failed.", obs.L("reason", "status")),
			timeouts:     cfg.Metrics.Counter("crowdrank_client_attempt_timeouts_total", "Attempts cut off by the per-attempt timeout."),
			replayedAcks: cfg.Metrics.Counter("crowdrank_client_replayed_acks_total", "Acks served from the daemon's idempotency window (retry after a lost ack)."),
			exhausted:    cfg.Metrics.Counter("crowdrank_client_exhausted_total", "Calls that failed every attempt."),
		},
		epoch: &atomic.Uint64{},
		sleep: sleepCtx,
		logf:  cfg.Logf,
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	return c, nil
}

// Metrics returns the client's metric registry.
func (c *Client) Metrics() *obs.Registry { return c.cfg.Metrics }

// NewKey draws the next idempotency key from the client's seeded stream.
// SubmitVotes calls it internally; use it directly only to coordinate a
// key across processes.
func (c *Client) NewKey() string {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return fmt.Sprintf("%016x%016x", c.rng.Uint64(), c.rng.Uint64())
}

// jitter draws the full-jitter backoff before retry number n (1-based):
// uniform in [0, min(MaxBackoff, BaseBackoff·2^(n-1))).
func (c *Client) jitter(n int) time.Duration {
	cap := c.cfg.BaseBackoff << (n - 1)
	if cap > c.cfg.MaxBackoff || cap <= 0 { // <=0 catches shift overflow
		cap = c.cfg.MaxBackoff
	}
	if cap <= 0 {
		return 0
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return time.Duration(c.rng.Int64N(int64(cap)))
}

// SubmitVotes delivers one vote batch, retrying under a single fresh
// idempotency key until the daemon acks it, the attempts are exhausted,
// or ctx ends. A nil error means the batch is durable on the daemon
// exactly once — even if earlier attempts died mid-response.
func (c *Client) SubmitVotes(ctx context.Context, votes []crowd.Vote) (Ack, error) {
	return c.SubmitVotesKeyed(ctx, c.NewKey(), votes)
}

// voteJSON mirrors the daemon's wire form of one vote.
type voteJSON struct {
	Worker   int  `json:"worker"`
	I        int  `json:"i"`
	J        int  `json:"j"`
	PrefersI bool `json:"prefers_i"`
}

// SubmitVotesKeyed is SubmitVotes under a caller-chosen idempotency key,
// for resubmitting a batch whose first delivery ended ambiguously in an
// earlier process life.
func (c *Client) SubmitVotesKeyed(ctx context.Context, key string, votes []crowd.Vote) (Ack, error) {
	var ack Ack
	if key == "" {
		return ack, fmt.Errorf("client: empty idempotency key")
	}
	wire := make([]voteJSON, len(votes))
	for i, v := range votes {
		wire[i] = voteJSON{Worker: v.Worker, I: v.I, J: v.J, PrefersI: v.PrefersI}
	}
	body, err := json.Marshal(struct {
		Votes []voteJSON `json:"votes"`
	}{wire})
	if err != nil {
		return ack, fmt.Errorf("client: encoding batch: %w", err)
	}
	err = c.do(ctx, http.MethodPost, "/votes", body, key, &ack)
	if err != nil {
		return ack, err
	}
	ack.Key = key
	if ack.Replayed {
		c.met.replayedAcks.Inc()
	}
	return ack, nil
}

// Rank fetches a ranking; deadline > 0 becomes the ?deadline_ms bound the
// daemon's degradation ladder honors.
func (c *Client) Rank(ctx context.Context, deadline time.Duration) (Ranking, error) {
	var rk Ranking
	path := "/rank"
	if deadline > 0 {
		path += "?deadline_ms=" + strconv.FormatInt(deadline.Milliseconds(), 10)
	}
	err := c.do(ctx, http.MethodGet, path, nil, "", &rk)
	return rk, err
}

// do runs the retry loop for one logical call: capped exponential backoff
// with full jitter, stretched by server Retry-After hints, bounded by
// MaxAttempts and ctx.
func (c *Client) do(ctx context.Context, method, path string, body []byte, key string, out any) error {
	var lastErr error
	var retryAfter time.Duration
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			wait := c.jitter(attempt - 1)
			if retryAfter > wait {
				wait = retryAfter
			}
			c.logf("client: %s %s attempt %d/%d in %v after: %v",
				method, path, attempt, c.cfg.MaxAttempts, wait.Round(time.Millisecond), lastErr)
			if err := c.sleep(ctx, wait); err != nil {
				return fmt.Errorf("client: cancelled while backing off (last error: %v): %w", lastErr, err)
			}
		}
		done, ra, err := c.attempt(ctx, method, path, body, key, out)
		if done {
			return err
		}
		lastErr, retryAfter = err, ra
		if ctx.Err() != nil {
			return fmt.Errorf("client: cancelled (last error: %v): %w", lastErr, ctx.Err())
		}
	}
	c.met.exhausted.Inc()
	return fmt.Errorf("client: %s %s failed after %d attempts: %w", method, path, c.cfg.MaxAttempts, lastErr)
}

// attempt issues one HTTP try. done=true means the outcome is final
// (success or permanent failure); otherwise err says why a retry is
// justified and retryAfter carries the server's wait hint, if any.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, key string, out any) (done bool, retryAfter time.Duration, err error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return true, 0, fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	if e := c.epoch.Load(); e > 0 {
		req.Header.Set(epochHeader, strconv.FormatUint(e, 10))
	}
	c.met.attempts.Inc()
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		// Transport-level failure: refused, reset, black-holed until the
		// attempt timeout, response torn mid-body. All retryable — the
		// idempotency key makes the ambiguous ones safe.
		if actx.Err() != nil && ctx.Err() == nil {
			c.met.timeouts.Inc()
		}
		c.met.retryNet.Inc()
		return false, 0, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer func() {
		//lint:ignore errcheck response body close on a fully-consumed or abandoned response carries nothing actionable
		_ = resp.Body.Close()
	}()
	c.noteEpoch(resp.Header)
	// Bound error bodies too: a hostile or confused server must not balloon
	// the client.
	limited := io.LimitReader(resp.Body, 1<<20)
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(limited).Decode(out); err != nil {
			// A torn 200 body (reset mid-response) means the ack was lost in
			// flight; the retry replays the key and gets it back.
			if actx.Err() != nil && ctx.Err() == nil {
				c.met.timeouts.Inc()
			}
			c.met.retryNet.Inc()
			return false, 0, fmt.Errorf("client: %s %s: reading 200 body: %w", method, path, err)
		}
		return true, 0, nil
	}
	raw, _ := io.ReadAll(limited) //nolint:errcheck // best-effort error context
	if resp.StatusCode == http.StatusServiceUnavailable {
		if hint := resp.Header.Get(leaderHeader); hint != "" {
			// A follower rejecting ingest: retrying the same node cannot
			// succeed until a promotion, but the hint says where the
			// leader is. Final for this endpoint; a Pool re-routes.
			return true, 0, &LeaderRedirect{Leader: hint, Body: string(raw)}
		}
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusInternalServerError, http.StatusBadGateway, http.StatusGatewayTimeout:
		// 429/503 are the daemon shedding load (full queue, shutdown,
		// poisoned journal); 5xx is transient server trouble. Honor the
		// Retry-After hint, capped so a confused server cannot park us.
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
				retryAfter = time.Duration(secs) * time.Second
				if retryAfter > c.cfg.MaxRetryAfter {
					retryAfter = c.cfg.MaxRetryAfter
				}
			}
		}
		c.met.retryStatus.Inc()
		return false, retryAfter, fmt.Errorf("client: %s %s: status %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(raw)))
	default:
		// 400, 404, 413, ...: the request itself is wrong; retrying the
		// same bytes cannot succeed.
		return true, 0, &StatusError{Status: resp.StatusCode, Body: string(raw)}
	}
}

// noteEpoch ratchets the shared epoch from a response header; the epoch
// only ever moves forward, so a laggard node cannot roll it back.
func (c *Client) noteEpoch(h http.Header) {
	raw := h.Get(epochHeader)
	if raw == "" {
		return
	}
	e, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return
	}
	for {
		cur := c.epoch.Load()
		if e <= cur || c.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Epoch returns the highest replication epoch this client has seen.
func (c *Client) Epoch() uint64 { return c.epoch.Load() }

// sleepCtx waits for d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
