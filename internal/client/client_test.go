package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/obs"
)

// testClient builds a client against url with instant fake sleeps,
// returning the recorded backoff schedule.
func testClient(t *testing.T, url string, mut func(*Config)) (*Client, *[]time.Duration) {
	t.Helper()
	cfg := Config{
		BaseURL:        url,
		Seed:           42,
		MaxAttempts:    4,
		BaseBackoff:    10 * time.Millisecond,
		MaxBackoff:     80 * time.Millisecond,
		AttemptTimeout: 2 * time.Second,
		Metrics:        obs.NewRegistry(),
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var mu sync.Mutex
	slept := []time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	return c, &slept
}

func votes(n int) []crowd.Vote {
	out := make([]crowd.Vote, n)
	for i := range out {
		out[i] = crowd.Vote{Worker: i % 3, I: i % 5, J: (i + 1) % 5, PrefersI: i%2 == 0}
	}
	return out
}

func ackBody(t *testing.T, w http.ResponseWriter, ack Ack) {
	t.Helper()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(ack); err != nil {
		t.Errorf("encoding ack: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty BaseURL")
	}
	if _, err := New(Config{BaseURL: "http://x", MaxAttempts: -1}); err == nil {
		t.Fatal("New accepted negative MaxAttempts")
	}
	if _, err := New(Config{BaseURL: "http://x", BaseBackoff: time.Second, MaxBackoff: time.Millisecond}); err == nil {
		t.Fatal("New accepted MaxBackoff < BaseBackoff")
	}
}

// TestRetryThenSuccess proves transient 5xx answers are retried and the
// idempotency key stays constant across every attempt of one batch.
func TestRetryThenSuccess(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	fails := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		n := len(keys)
		mu.Unlock()
		if n <= fails {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		ackBody(t, w, Ack{Accepted: 5, Seq: 1, TotalVotes: 5})
	}))
	defer srv.Close()

	c, slept := testClient(t, srv.URL, nil)
	ack, err := c.SubmitVotes(context.Background(), votes(5))
	if err != nil {
		t.Fatalf("SubmitVotes: %v", err)
	}
	if ack.Accepted != 5 || ack.Key == "" {
		t.Fatalf("ack = %+v, want 5 accepted and a key", ack)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 3 {
		t.Fatalf("attempts = %d, want 3", len(keys))
	}
	for _, k := range keys {
		if k != ack.Key {
			t.Fatalf("key changed across retries: %v vs ack key %s", keys, ack.Key)
		}
	}
	if len(*slept) != 2 {
		t.Fatalf("backoffs = %v, want 2 sleeps", *slept)
	}
	if got := c.met.retryStatus.Value(); got != 2 {
		t.Fatalf("retryStatus counter = %d, want 2", got)
	}
	if got := c.met.attempts.Value(); got != 3 {
		t.Fatalf("attempts counter = %d, want 3", got)
	}
}

// TestPermanentErrorNoRetry proves 4xx answers (other than 429) fail
// immediately with a StatusError.
func TestPermanentErrorNoRetry(t *testing.T) {
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		http.Error(w, `{"error":"body exceeds limit"}`, http.StatusRequestEntityTooLarge)
	}))
	defer srv.Close()

	c, slept := testClient(t, srv.URL, nil)
	_, err := c.SubmitVotes(context.Background(), votes(1))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("err = %v, want StatusError 413", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 || len(*slept) != 0 {
		t.Fatalf("calls=%d sleeps=%v, want exactly one attempt and no backoff", calls, *slept)
	}
}

// TestRetryAfterHonored proves a 429 Retry-After stretches the backoff to
// at least the advertised wait, capped by MaxRetryAfter.
func TestRetryAfterHonored(t *testing.T) {
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		switch n {
		case 1:
			w.Header().Set("Retry-After", "2")
			http.Error(w, "queue full", http.StatusTooManyRequests)
		case 2:
			w.Header().Set("Retry-After", "3600") // way past MaxRetryAfter
			http.Error(w, "still full", http.StatusServiceUnavailable)
		default:
			ackBody(t, w, Ack{Accepted: 1, Seq: 1, TotalVotes: 1})
		}
	}))
	defer srv.Close()

	c, slept := testClient(t, srv.URL, func(cfg *Config) { cfg.MaxRetryAfter = 10 * time.Second })
	if _, err := c.SubmitVotes(context.Background(), votes(1)); err != nil {
		t.Fatalf("SubmitVotes: %v", err)
	}
	s := *slept
	if len(s) != 2 {
		t.Fatalf("sleeps = %v, want 2", s)
	}
	if s[0] < 2*time.Second {
		t.Fatalf("first backoff %v ignored Retry-After: 2", s[0])
	}
	if s[1] != 10*time.Second {
		t.Fatalf("second backoff %v, want the 10s MaxRetryAfter cap", s[1])
	}
}

// TestAttemptTimeout proves a stalled server burns one attempt (counted
// as a timeout), not the whole call.
func TestAttemptTimeout(t *testing.T) {
	var calls int
	var mu sync.Mutex
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			<-release // stall until the test ends
			return
		}
		ackBody(t, w, Ack{Accepted: 1, Seq: 1, TotalVotes: 1})
	}))
	defer srv.Close()
	// LIFO: the stalled handler must be released before srv.Close waits on it.
	defer close(release)

	c, _ := testClient(t, srv.URL, func(cfg *Config) { cfg.AttemptTimeout = 50 * time.Millisecond })
	if _, err := c.SubmitVotes(context.Background(), votes(1)); err != nil {
		t.Fatalf("SubmitVotes: %v", err)
	}
	if got := c.met.timeouts.Value(); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
}

// TestExhaustion proves the loop gives up after MaxAttempts and reports
// the last error.
func TestExhaustion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusBadGateway)
	}))
	defer srv.Close()

	c, slept := testClient(t, srv.URL, func(cfg *Config) { cfg.MaxAttempts = 3 })
	_, err := c.SubmitVotes(context.Background(), votes(1))
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want exhaustion after 3 attempts", err)
	}
	if len(*slept) != 2 {
		t.Fatalf("sleeps = %v, want 2", *slept)
	}
	if got := c.met.exhausted.Value(); got != 1 {
		t.Fatalf("exhausted counter = %d, want 1", got)
	}
}

// TestContextCancelStopsRetries proves ctx cancellation wins over the
// retry budget.
func TestContextCancelStopsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c, _ := testClient(t, srv.URL, nil)
	c.sleep = func(ctx context.Context, _ time.Duration) error {
		cancel() // cancel during the first backoff
		return ctx.Err()
	}
	_, err := c.SubmitVotes(ctx, votes(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDeterministicKeys proves two clients with the same seed draw the
// same key sequence, and one client never repeats a key.
func TestDeterministicKeys(t *testing.T) {
	mk := func() *Client {
		c, err := New(Config{BaseURL: "http://unused", Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		ka, kb := a.NewKey(), b.NewKey()
		if ka != kb {
			t.Fatalf("draw %d: same seed diverged: %s vs %s", i, ka, kb)
		}
		if seen[ka] {
			t.Fatalf("draw %d: key %s repeated", i, ka)
		}
		seen[ka] = true
		if len(ka) != 32 {
			t.Fatalf("key %q is not 32 hex chars", ka)
		}
	}
}

// TestReplayedAckCounted proves a replayed=true ack increments the replay
// counter — the observable trace of a retry that hit the daemon's
// idempotency window.
func TestReplayedAckCounted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ackBody(t, w, Ack{Accepted: 2, Seq: 9, TotalVotes: 40, Replayed: true})
	}))
	defer srv.Close()

	c, _ := testClient(t, srv.URL, nil)
	ack, err := c.SubmitVotes(context.Background(), votes(2))
	if err != nil {
		t.Fatalf("SubmitVotes: %v", err)
	}
	if !ack.Replayed {
		t.Fatal("ack.Replayed lost in decoding")
	}
	if got := c.met.replayedAcks.Value(); got != 1 {
		t.Fatalf("replayedAcks counter = %d, want 1", got)
	}
}

// TestRank decodes the rank response and forwards the deadline hint.
func TestRank(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/rank" {
			t.Errorf("path = %s", r.URL.Path)
		}
		if got := r.URL.Query().Get("deadline_ms"); got != "250" {
			t.Errorf("deadline_ms = %q, want 250", got)
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(Ranking{Ranking: []int{2, 0, 1}, Algorithm: "saps", Votes: 10, Seed: 5}); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	c, _ := testClient(t, srv.URL, nil)
	rk, err := c.Rank(context.Background(), 250*time.Millisecond)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if len(rk.Ranking) != 3 || rk.Algorithm != "saps" {
		t.Fatalf("rank = %+v", rk)
	}
}

// TestJitterBounds proves the backoff schedule doubles its cap and stays
// within [0, MaxBackoff).
func TestJitterBounds(t *testing.T) {
	c, err := New(Config{BaseURL: "http://unused", Seed: 3, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 20; n++ {
		capN := time.Duration(10*time.Millisecond) << (n - 1)
		if capN > 80*time.Millisecond || capN <= 0 {
			capN = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			if d := c.jitter(n); d < 0 || d >= capN {
				t.Fatalf("retry %d: jitter %v outside [0, %v)", n, d, capN)
			}
		}
	}
}
