package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdrank/internal/crowd"
)

// Pool fans one logical client over several crowdrankd nodes in a
// replicated deployment. It keeps a best-known-leader endpoint, follows
// the X-Crowdrank-Leader hints followers attach to their 503s,
// re-resolves on connection failure by rotating through the configured
// endpoints, and shares one epoch counter across every per-endpoint
// client so the fencing epoch learned from a freshly-promoted leader is
// echoed at whatever node is contacted next.
//
// A batch keeps ONE idempotency key across all nodes and all attempts:
// if the old leader acked it and died, the retry of the same key on the
// new leader answers from the replicated ack window instead of applying
// the batch again — exactly-once end to end, across failover.
type Pool struct {
	endpoints []string // configured nodes, rotation ring order
	rounds    int      // endpoint switches per logical call
	logf      func(string, ...any)

	// template supplies keys, jitter, and the sleep seam (one seeded
	// stream for the whole pool, matching single-client determinism).
	template *Client

	mu        sync.Mutex
	clients   map[string]*Client
	preferred string // best-known leader endpoint

	// epoch is shared by every per-endpoint client.
	epoch *atomic.Uint64
}

// NewPool builds a Pool over the given node base URLs. cfg configures
// the per-endpoint clients (cfg.BaseURL is ignored); per-endpoint
// MaxAttempts is forced low because endpoint rotation, not same-node
// persistence, is the pool's retry strategy — cfg.MaxAttempts instead
// bounds how many times one logical call may switch endpoints.
//
//lint:ignore ctxloop construction only: the loop builds one client per configured endpoint and performs no I/O
func NewPool(cfg Config, endpoints []string) (*Pool, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("client: pool needs at least one endpoint")
	}
	rounds := cfg.MaxAttempts
	if rounds == 0 {
		rounds = 8
	}
	// Two tries per node: enough to ride out a one-off network blip
	// without parking the pool on a dead endpoint.
	cfg.MaxAttempts = 2
	p := &Pool{
		rounds:  rounds,
		clients: make(map[string]*Client, len(endpoints)),
		epoch:   &atomic.Uint64{},
	}
	for _, ep := range endpoints {
		ep = strings.TrimRight(strings.TrimSpace(ep), "/")
		if ep == "" {
			return nil, fmt.Errorf("client: pool endpoint must not be empty")
		}
		if _, ok := p.clients[ep]; ok {
			continue
		}
		ccfg := cfg
		ccfg.BaseURL = ep
		c, err := New(ccfg)
		if err != nil {
			return nil, err
		}
		c.epoch = p.epoch
		p.clients[ep] = c
		p.endpoints = append(p.endpoints, ep)
		if p.template == nil {
			p.template = c
		}
	}
	p.preferred = p.endpoints[0]
	p.logf = p.template.logf
	return p, nil
}

// Epoch returns the highest replication epoch the pool has seen.
func (p *Pool) Epoch() uint64 { return p.epoch.Load() }

// Leader returns the endpoint the pool currently believes leads.
func (p *Pool) Leader() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.preferred
}

// NewKey draws the next idempotency key from the pool's seeded stream.
func (p *Pool) NewKey() string { return p.template.NewKey() }

// target returns the preferred endpoint's client.
func (p *Pool) target() (string, *Client) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.preferred, p.clients[p.preferred]
}

// follow adopts a leader hint, creating a client for an endpoint the
// pool was not configured with (hints name advertised URLs, which may
// differ from the dial addresses when proxies sit in between — a hint
// for an unknown URL is still the cluster's best routing information).
// Reports whether the hint moved the preference somewhere new.
func (p *Pool) follow(hint string) bool {
	hint = strings.TrimRight(strings.TrimSpace(hint), "/")
	if hint == "" {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if hint == p.preferred {
		return false
	}
	if _, ok := p.clients[hint]; !ok {
		ccfg := p.template.cfg
		ccfg.BaseURL = hint
		c, err := New(ccfg)
		if err != nil {
			return false
		}
		c.epoch = p.epoch
		p.clients[hint] = c
	}
	p.logf("client: pool following leader hint to %s", hint)
	p.preferred = hint
	return true
}

// rotateFrom moves the preference to the next configured endpoint after
// the one that just failed (a failed dynamic hint falls back to the
// start of the ring).
func (p *Pool) rotateFrom(failed string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.preferred != failed {
		return // someone else already moved it
	}
	next := p.endpoints[0]
	for i, ep := range p.endpoints {
		if ep == failed {
			next = p.endpoints[(i+1)%len(p.endpoints)]
			break
		}
	}
	p.logf("client: pool rotating from %s to %s", failed, next)
	p.preferred = next
}

// SubmitVotes delivers one batch under a single fresh idempotency key,
// following leader hints and rotating endpoints until a node acks it,
// the rounds are exhausted, or ctx ends.
func (p *Pool) SubmitVotes(ctx context.Context, votes []crowd.Vote) (Ack, error) {
	return p.SubmitVotesKeyed(ctx, p.NewKey(), votes)
}

// SubmitVotesKeyed is SubmitVotes under a caller-chosen key.
func (p *Pool) SubmitVotesKeyed(ctx context.Context, key string, votes []crowd.Vote) (Ack, error) {
	var ack Ack
	var lastErr error
	for round := 0; round < p.rounds; round++ {
		if round > 0 {
			if err := p.template.sleep(ctx, p.template.jitter(round)); err != nil {
				return ack, fmt.Errorf("client: pool cancelled while backing off (last error: %v): %w", lastErr, err)
			}
		}
		target, c := p.target()
		ack, lastErr = c.SubmitVotesKeyed(ctx, key, votes)
		if lastErr == nil {
			return ack, nil
		}
		if ctx.Err() != nil {
			return ack, fmt.Errorf("client: pool cancelled (last error: %v): %w", lastErr, ctx.Err())
		}
		var redirect *LeaderRedirect
		if errors.As(lastErr, &redirect) && p.follow(redirect.Leader) {
			continue
		}
		var status *StatusError
		if errors.As(lastErr, &status) {
			// The daemon answered with a permanent rejection (bad batch,
			// oversized body); no other node will disagree.
			return ack, lastErr
		}
		p.rotateFrom(target)
	}
	return ack, fmt.Errorf("client: pool exhausted %d endpoint rounds: %w", p.rounds, lastErr)
}

// Rank fetches a ranking from any node, preferred first — followers are
// warm read replicas, so reads survive a leader outage without waiting
// for promotion.
func (p *Pool) Rank(ctx context.Context, deadline time.Duration) (Ranking, error) {
	var lastErr error
	start, _ := p.target()
	order := p.ring(start)
	for _, ep := range order {
		p.mu.Lock()
		c := p.clients[ep]
		p.mu.Unlock()
		rk, err := c.Rank(ctx, deadline)
		if err == nil {
			return rk, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return Ranking{}, fmt.Errorf("client: pool rank failed on every node: %w", lastErr)
}

// Healthz fetches one node's /healthz body (any status), for operators
// and tests watching replication lag through the pool's endpoints.
func (p *Pool) Healthz(ctx context.Context, endpoint string) ([]byte, error) {
	p.mu.Lock()
	c, ok := p.clients[strings.TrimRight(endpoint, "/")]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("client: pool has no endpoint %q", endpoint)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		//lint:ignore errcheck response body close after a full read carries nothing actionable
		_ = resp.Body.Close()
	}()
	c.noteEpoch(resp.Header)
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

// ring returns the endpoints starting from `from` (or the configured
// order when from is a dynamic hint), wrapping around, with `from` first
// even when it is not a configured endpoint.
func (p *Pool) ring(from string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	order := make([]string, 0, len(p.endpoints)+1)
	seen := map[string]bool{}
	add := func(ep string) {
		if !seen[ep] {
			seen[ep] = true
			order = append(order, ep)
		}
	}
	if _, ok := p.clients[from]; ok {
		add(from)
	}
	start := 0
	for i, ep := range p.endpoints {
		if ep == from {
			start = i
			break
		}
	}
	for i := range p.endpoints {
		add(p.endpoints[(start+i)%len(p.endpoints)])
	}
	return order
}
