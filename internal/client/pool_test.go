package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"crowdrank/internal/obs"
)

// testPool builds a pool over the given endpoints with instant fake
// sleeps on every per-endpoint client and on the pool's own rounds.
func testPool(t *testing.T, endpoints []string) *Pool {
	t.Helper()
	cfg := Config{
		Seed:           42,
		MaxAttempts:    6,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     4 * time.Millisecond,
		AttemptTimeout: 2 * time.Second,
		Metrics:        obs.NewRegistry(),
	}
	p, err := NewPool(cfg, endpoints)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	noSleep := func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	for _, c := range p.clients {
		c.sleep = noSleep
	}
	return p
}

// TestPoolFollowsLeaderHint submits to a follower that 503s with a
// leader hint; the pool must re-aim at the hinted node, deliver there
// under the SAME idempotency key, and keep the hinted node preferred.
func TestPoolFollowsLeaderHint(t *testing.T) {
	var mu sync.Mutex
	var leaderKeys []string
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		leaderKeys = append(leaderKeys, r.Header.Get("Idempotency-Key"))
		mu.Unlock()
		w.Header().Set(epochHeader, "3")
		ackBody(t, w, Ack{Accepted: 5})
	}))
	defer leader.Close()

	var followerHits int
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		followerHits++
		mu.Unlock()
		w.Header().Set(leaderHeader, leader.URL)
		http.Error(w, "not the leader", http.StatusServiceUnavailable)
	}))
	defer follower.Close()

	p := testPool(t, []string{follower.URL, leader.URL})
	ack, err := p.SubmitVotes(context.Background(), votes(5))
	if err != nil {
		t.Fatalf("SubmitVotes: %v", err)
	}
	if ack.Accepted != 5 {
		t.Fatalf("accepted %d, want 5", ack.Accepted)
	}
	mu.Lock()
	defer mu.Unlock()
	if followerHits != 1 {
		t.Fatalf("follower was hit %d times; the hint should redirect after one 503", followerHits)
	}
	if len(leaderKeys) != 1 || leaderKeys[0] == "" {
		t.Fatalf("leader saw keys %v, want exactly one non-empty key", leaderKeys)
	}
	if p.Leader() != leader.URL {
		t.Fatalf("pool preference %q, want hinted leader %q", p.Leader(), leader.URL)
	}
	if p.Epoch() != 3 {
		t.Fatalf("pool epoch %d, want 3 learned from the leader's header", p.Epoch())
	}
}

// TestPoolRotatesOnDeadEndpoint points the pool's preference at a dead
// address; connection failures must rotate it onto the live node.
func TestPoolRotatesOnDeadEndpoint(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ackBody(t, w, Ack{Accepted: 3})
	}))
	defer live.Close()

	// A listener that is closed immediately: connections are refused.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	p := testPool(t, []string{deadURL, live.URL})
	ack, err := p.SubmitVotes(context.Background(), votes(3))
	if err != nil {
		t.Fatalf("SubmitVotes: %v", err)
	}
	if ack.Accepted != 3 {
		t.Fatalf("accepted %d, want 3", ack.Accepted)
	}
	if p.Leader() != live.URL {
		t.Fatalf("pool preference %q, want rotated to %q", p.Leader(), live.URL)
	}
}

// TestPoolSingleKeyAcrossFailover drives a mid-flight failover: the
// first node acks, then starts refusing with a hint at its successor.
// A second SubmitVotesKeyed retry of the SAME key must reach the new
// leader carrying the same key it carried to the old one, and the epoch
// ratchet learned from node B must be echoed back on later requests.
func TestPoolSingleKeyAcrossFailover(t *testing.T) {
	var mu sync.Mutex
	var bKeys []string
	var bEpochHdrs []string
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		bKeys = append(bKeys, r.Header.Get("Idempotency-Key"))
		bEpochHdrs = append(bEpochHdrs, r.Header.Get(epochHeader))
		mu.Unlock()
		w.Header().Set(epochHeader, "1")
		ackBody(t, w, Ack{Accepted: 4, Replayed: true})
	}))
	defer b.Close()

	var aKeys []string
	failedOver := false
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		aKeys = append(aKeys, r.Header.Get("Idempotency-Key"))
		if failedOver {
			w.Header().Set(leaderHeader, b.URL)
			http.Error(w, "deposed", http.StatusServiceUnavailable)
			return
		}
		ackBody(t, w, Ack{Accepted: 4})
	}))
	defer a.Close()

	p := testPool(t, []string{a.URL, b.URL})
	key := p.NewKey()
	if _, err := p.SubmitVotesKeyed(context.Background(), key, votes(4)); err != nil {
		t.Fatalf("first submit: %v", err)
	}

	mu.Lock()
	failedOver = true
	mu.Unlock()

	ack, err := p.SubmitVotesKeyed(context.Background(), key, votes(4))
	if err != nil {
		t.Fatalf("retry after failover: %v", err)
	}
	if !ack.Replayed {
		t.Fatal("retry was not served from the replicated ack window")
	}
	mu.Lock()
	if len(aKeys) < 1 || len(bKeys) != 1 || aKeys[0] != key || bKeys[0] != key {
		mu.Unlock()
		t.Fatalf("keys diverged across nodes: a=%v b=%v want both %q", aKeys, bKeys, key)
	}
	mu.Unlock()
	if p.Epoch() != 1 {
		t.Fatalf("pool epoch %d, want 1 from the new leader", p.Epoch())
	}

	// A third submit goes straight to B and echoes the learned epoch.
	if _, err := p.SubmitVotes(context.Background(), votes(4)); err != nil {
		t.Fatalf("post-failover submit: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got := bEpochHdrs[len(bEpochHdrs)-1]; got != "1" {
		t.Fatalf("request epoch header %q, want ratcheted 1", got)
	}
}

// TestPoolRankPrefersLeaderThenFallsBack reads from the preferred node
// and falls back to any live replica when the leader is down.
func TestPoolRankPrefersLeaderThenFallsBack(t *testing.T) {
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		//lint:ignore errcheck test handler write; httptest surfaces failures elsewhere
		_, _ = w.Write([]byte(`{"ranking":[2,0,1],"n":3,"votes":9}`))
	}))
	defer replica.Close()

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	p := testPool(t, []string{deadURL, replica.URL})
	rk, err := p.Rank(context.Background(), time.Second)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if len(rk.Ranking) != 3 || rk.Ranking[0] != 2 {
		t.Fatalf("ranking %+v, want [2 0 1]", rk)
	}
}

func TestPoolRejectsEmptyEndpoints(t *testing.T) {
	if _, err := NewPool(Config{Seed: 1}, nil); err == nil {
		t.Fatal("NewPool accepted an empty endpoint list")
	}
	if _, err := NewPool(Config{Seed: 1}, []string{"  "}); err == nil {
		t.Fatal("NewPool accepted a blank endpoint")
	}
}
