package client

// The chaos soak is the end-to-end acceptance test for the tentpole
// contract: a real Client talking to a real crowdrankd engine through the
// netfault proxy — resets, black holes, half-opens, dribbles, latency —
// with a SIGKILL and restart of the daemon mid-soak, must lose no acked
// batch, apply no batch twice, and converge to exactly the ranking a
// fault-free run produces.
//
// The daemon runs in a child process (re-exec of this test binary, the
// same pattern as internal/serve's chaos tests) so the SIGKILL is a real
// process death, and the proxy's target callback re-reads the address
// file so the same proxy carries traffic across the restart.
//
// Knobs for CI and drills:
//
//	CROWDRANK_SOAK_BATCHES  batch count (default 24; raise for a long soak)
//	CROWDRANK_SOAK_SUMMARY  write a JSON run summary to this path

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strconv"
	"testing"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/journal"
	"crowdrank/internal/netfault"
	"crowdrank/internal/serve"
)

const (
	soakDirEnv     = "CROWDRANK_SOAK_DIR"
	soakBatchesEnv = "CROWDRANK_SOAK_BATCHES"
	soakSummaryEnv = "CROWDRANK_SOAK_SUMMARY"

	soakN             = 16 // within ExactLimit, so ranking is the exact Held-Karp answer
	soakM             = 8
	soakPairs         = soakN * (soakN - 1) / 2
	soakVotesPerBatch = 3
	soakBatchesShort  = 24
)

// soakVote derives the seq-th unique submission: every vote in the soak is
// distinct, so a double-applied batch would surface as recovered
// duplicates and a lost batch as a short vote count.
func soakVote(seq int) crowd.Vote {
	p := seq % soakPairs
	w := (seq / soakPairs) % soakM
	// Unrank p into the (i, j) pair with i < j.
	i, row := 0, soakN-1
	for p >= row {
		p -= row
		i++
		row--
	}
	return crowd.Vote{Worker: w, I: i, J: i + 1 + p, PrefersI: seq%3 != 0}
}

// soakBatch is the b-th batch of the soak's deterministic vote stream.
func soakBatch(b int) []crowd.Vote {
	votes := make([]crowd.Vote, soakVotesPerBatch)
	for k := range votes {
		votes[k] = soakVote(b*soakVotesPerBatch + k)
	}
	return votes
}

// soakServeConfig is the engine configuration shared by the child daemon,
// the fault-free baseline, and the offline recovery check, so all three
// rank the same votes the same way.
func soakServeConfig() serve.Config {
	cfg := serve.DefaultConfig(soakN, soakM)
	cfg.Seed = 1
	// Journal-only recovery keeps the offline accounting exact: one acked
	// batch <=> one journal record, so Recovered().Records counts both
	// losses and double-applications. Kills interleaved with snapshot
	// writes are internal/serve's chaos coverage, not this soak's.
	cfg.SnapshotEveryBatches = -1
	cfg.SnapshotMaxJournalBytes = -1
	return cfg
}

// TestSoakChildDaemon is not a test of its own: TestChaosSoakExactlyOnce
// re-execs the test binary with CROWDRANK_SOAK_DIR set to turn this into
// the victim daemon that gets SIGKILLed mid-soak.
func TestSoakChildDaemon(t *testing.T) {
	dir := os.Getenv(soakDirEnv)
	if dir == "" {
		t.Skip("not a soak child")
	}
	cfg := soakServeConfig()
	cfg.JournalPath = filepath.Join(dir, "wal")
	cfg.JournalSync = journal.SyncAlways // acks must mean durable
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("soak child: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("soak child: %v", err)
	}
	tmp := filepath.Join(dir, "addr.tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatalf("soak child: %v", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
		t.Fatalf("soak child: %v", err)
	}
	// Serve until SIGKILL; there is no graceful path out of this process.
	t.Fatalf("soak child: listener exited: %v", http.Serve(ln, s.Handler()))
}

// startSoakChild re-execs the test binary as a victim daemon in dir and
// waits for its address file. Callers SIGKILL it via child.Process.Kill;
// the cleanup reaps it if the test bails out early.
func startSoakChild(t *testing.T, dir string) *exec.Cmd {
	t.Helper()
	child := exec.Command(os.Args[0], "-test.run=^TestSoakChildDaemon$", "-test.v")
	child.Env = append(os.Environ(), soakDirEnv+"="+dir)
	child.Stdout, child.Stderr = os.Stderr, os.Stderr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = child.Process.Kill()
		_ = child.Wait() // double Wait errors harmlessly after a clean reap
	})
	addrPath := filepath.Join(dir, "addr")
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("soak child never wrote its address file")
		}
		if _, err := os.ReadFile(addrPath); err == nil {
			return child
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// soakAddr reads the child's current address; "" while the daemon is down
// makes the proxy's upstream dial fail fast, which the client retries.
func soakAddr(dir string) string {
	b, err := os.ReadFile(filepath.Join(dir, "addr"))
	if err != nil {
		return ""
	}
	return string(b)
}

// rankVia asks one engine for its converged ranking through the real
// client, with a deadline generous enough that n=soakN always gets the
// exact algorithm.
func rankVia(t *testing.T, s *serve.Server) Ranking {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c, err := New(Config{BaseURL: hs.URL, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rk, err := c.Rank(ctx, 2*time.Second)
	if err != nil {
		t.Fatalf("rank: %v", err)
	}
	return rk
}

// ackEquivalent compares two acks for the same batch, ignoring the replay
// marker and the client-side key annotation: a replayed ack must carry the
// original acknowledgement verbatim.
func ackEquivalent(a, b Ack) bool {
	a.Replayed, b.Replayed = false, false
	a.Key, b.Key = "", ""
	return a == b
}

// TestChaosSoakExactlyOnce is the exactly-once acceptance soak described
// in the package comment. It is deterministic under the fixed client and
// proxy seeds: the fault plan drawn for the k-th accepted connection and
// the client's key/jitter streams are pure functions of the seeds.
func TestChaosSoakExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	batches := soakBatchesShort
	if v := os.Getenv(soakBatchesEnv); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 4 {
			t.Fatalf("bad %s=%q: want an integer >= 4", soakBatchesEnv, v)
		}
		batches = n
	}
	if batches*soakVotesPerBatch > soakPairs*soakM {
		t.Fatalf("%d batches exceed the %d unique votes the soak universe holds; raise soakN/soakM",
			batches, soakPairs*soakM)
	}

	// Fault-free baseline: same engine config, same votes, no network —
	// the ranking the chaos run must reproduce exactly.
	baseline, err := serve.New(soakServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < batches; b++ {
		if _, err := baseline.Ingest(soakBatch(b)); err != nil {
			t.Fatalf("baseline ingest %d: %v", b, err)
		}
	}
	want := rankVia(t, baseline)
	if err := baseline.Close(); err != nil {
		t.Fatal(err)
	}

	// The chaos run: child daemon behind the fault-injecting proxy.
	dir := t.TempDir()
	child := startSoakChild(t, dir)
	proxy, err := netfault.NewProxy(func() string { return soakAddr(dir) }, netfault.Config{
		Seed:          7,
		ResetProb:     0.20,
		BlackholeProb: 0.05,
		HalfOpenProb:  0.05,
		DribbleProb:   0.05,
		Latency:       2 * time.Millisecond,
		FaultAfter:    256,
		DribbleDelay:  200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore errcheck test teardown of the proxy listener; assertions already ran on end-to-end state
		_ = proxy.Close()
	}()
	c, err := New(Config{
		BaseURL:        "http://" + proxy.Addr(),
		Seed:           42,
		MaxAttempts:    60,
		BaseBackoff:    10 * time.Millisecond,
		MaxBackoff:     500 * time.Millisecond,
		AttemptTimeout: time.Second,
		// No keep-alive pooling: every attempt opens a fresh connection and
		// draws a fresh fault plan, so the soak exercises far more faults
		// than a handful of long-lived pooled connections would.
		HTTPClient: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	keys := make([]string, batches)
	acks := make([]Ack, batches)
	submit := func(b int) (Ack, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
		defer cancel()
		return c.SubmitVotesKeyed(ctx, keys[b], soakBatch(b))
	}
	deliver := func(b int) {
		keys[b] = c.NewKey()
		ack, err := submit(b)
		if err != nil {
			t.Fatalf("batch %d never acked (proxy: %s): %v", b, proxy.Stats(), err)
		}
		acks[b] = ack
	}

	half := batches / 2
	for b := 0; b < half; b++ {
		deliver(b)
	}

	// In-process replay: resubmitting an acked key must return the
	// original ack from the daemon's window, not re-apply the batch.
	if r, err := submit(half - 1); err != nil {
		t.Fatalf("in-process replay: %v", err)
	} else if !r.Replayed || !ackEquivalent(r, acks[half-1]) {
		t.Fatalf("in-process replay: got %+v, want replayed copy of %+v", r, acks[half-1])
	}

	// SIGKILL mid-soak: the next batch is submitted INTO the outage, so
	// its retries span daemon death, restart, and journal replay.
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "addr")); err != nil {
		t.Fatal(err)
	}
	keys[half] = c.NewKey()
	type outcome struct {
		ack Ack
		err error
	}
	mid := make(chan outcome, 1)
	go func() {
		ack, err := submit(half)
		mid <- outcome{ack, err}
	}()
	time.Sleep(300 * time.Millisecond) // let retries hit the dead daemon
	_ = child.Wait()                   // reap before the successor starts
	child = startSoakChild(t, dir)
	select {
	case o := <-mid:
		if o.err != nil {
			t.Fatalf("batch %d lost across the restart (proxy: %s): %v", half, proxy.Stats(), o.err)
		}
		acks[half] = o.ack
	case <-time.After(2 * time.Minute):
		t.Fatalf("batch %d still unacked long after the restart (proxy: %s)", half, proxy.Stats())
	}

	// Cross-restart replay: a key acked by the daemon's FIRST life must
	// replay from the restarted daemon's recovered ack window.
	if r, err := submit(2); err != nil {
		t.Fatalf("cross-restart replay: %v", err)
	} else if !r.Replayed || !ackEquivalent(r, acks[2]) {
		t.Fatalf("cross-restart replay: got %+v, want replayed copy of %+v", r, acks[2])
	}

	for b := half + 1; b < batches; b++ {
		deliver(b)
	}

	// Exactly-once sweep: EVERY key of the soak replays its original ack;
	// any re-application or forgotten ack fails here by construction.
	for b := 0; b < batches; b++ {
		r, err := submit(b)
		if err != nil {
			t.Fatalf("sweep replay of batch %d: %v", b, err)
		}
		if !r.Replayed || !ackEquivalent(r, acks[b]) {
			t.Fatalf("sweep replay of batch %d: got %+v, want replayed copy of %+v", b, r, acks[b])
		}
	}

	// Converged ranking through the faulty proxy.
	rctx, rcancel := context.WithTimeout(context.Background(), 60*time.Second)
	got, err := c.Rank(rctx, 2*time.Second)
	rcancel()
	if err != nil {
		t.Fatalf("rank through proxy: %v", err)
	}
	if !slices.Equal(got.Ranking, want.Ranking) {
		t.Fatalf("chaos ranking diverged from the fault-free run:\n got %v (%s)\nwant %v (%s)",
			got.Ranking, got.Algorithm, want.Ranking, want.Algorithm)
	}
	if got.Votes != batches*soakVotesPerBatch {
		t.Fatalf("daemon holds %d votes, want %d", got.Votes, batches*soakVotesPerBatch)
	}

	// Offline verification: kill the daemon and recover its journal into a
	// fresh engine. One acked batch <=> one journal record, every vote
	// unique, so these three checks pin zero loss and zero double-apply.
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = child.Wait()
	offCfg := soakServeConfig()
	offCfg.JournalPath = filepath.Join(dir, "wal")
	off, err := serve.New(offCfg)
	if err != nil {
		t.Fatalf("offline recovery: %v", err)
	}
	if rec := off.Recovered(); rec.Records != batches {
		t.Fatalf("journal holds %d batch records, want exactly %d (loss or double-apply): %s",
			rec.Records, batches, rec)
	}
	if n := off.VoteCount(); n != batches*soakVotesPerBatch {
		t.Fatalf("recovered %d votes, want %d", n, batches*soakVotesPerBatch)
	}
	if st := off.StatsSnapshot(); st.Duplicates != 0 {
		t.Fatalf("recovery deduplicated %d votes; some batch was journaled twice", st.Duplicates)
	}
	offRank := rankVia(t, off)
	if !slices.Equal(offRank.Ranking, want.Ranking) {
		t.Fatalf("post-recovery ranking diverged from the fault-free run:\n got %v\nwant %v",
			offRank.Ranking, want.Ranking)
	}
	if err := off.Close(); err != nil {
		t.Fatal(err)
	}

	if path := os.Getenv(soakSummaryEnv); path != "" {
		stats := proxy.Stats()
		summary, err := json.MarshalIndent(map[string]any{
			"batches":         batches,
			"votes":           batches * soakVotesPerBatch,
			"faults_injected": stats,
			"fault_summary":   stats.String(),
			"ranking":         want.Ranking,
			"algorithm":       want.Algorithm,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, summary, 0o644); err != nil {
			t.Fatalf("writing %s: %v", path, err)
		}
	}
}
