package crowd

import (
	"fmt"

	"crowdrank/internal/feq"
)

// CleanReport summarizes what Clean dropped.
type CleanReport struct {
	// Kept is the number of votes that passed validation.
	Kept int
	// DroppedInvalidPair counts votes with out-of-range or self pairs.
	DroppedInvalidPair int
	// DroppedInvalidWorker counts votes from out-of-range workers.
	DroppedInvalidWorker int
	// DroppedDuplicates counts exact duplicate (worker, pair, answer)
	// triples beyond the first occurrence when deduplication is enabled.
	DroppedDuplicates int
}

// String renders the report compactly for CLI output.
func (r CleanReport) String() string {
	return fmt.Sprintf("kept %d, dropped %d invalid-pair, %d invalid-worker, %d duplicate",
		r.Kept, r.DroppedInvalidPair, r.DroppedInvalidWorker, r.DroppedDuplicates)
}

// Clean filters a raw vote list (for example a spreadsheet import) down to
// votes valid for n objects and m workers, optionally removing exact
// duplicates of the same worker answering the same pair the same way
// (double submissions). Conflicting repeat answers by the same worker are
// kept — they are genuine observations for truth discovery. The input is
// not modified.
func Clean(votes []Vote, n, m int, dedupe bool) ([]Vote, CleanReport) {
	var report CleanReport
	out := make([]Vote, 0, len(votes))
	type submission struct {
		worker   int
		pair     [2]int
		prefersI bool
	}
	seen := make(map[submission]bool)
	for _, v := range votes {
		if v.I < 0 || v.I >= n || v.J < 0 || v.J >= n || v.I == v.J {
			report.DroppedInvalidPair++
			continue
		}
		if v.Worker < 0 || v.Worker >= m {
			report.DroppedInvalidWorker++
			continue
		}
		if dedupe {
			p := v.Pair()
			key := submission{worker: v.Worker, pair: [2]int{p.I, p.J}, prefersI: feq.One(v.Value())}
			if seen[key] {
				report.DroppedDuplicates++
				continue
			}
			seen[key] = true
		}
		out = append(out, v)
	}
	report.Kept = len(out)
	return out, report
}

// CoverageGaps returns the canonical pairs from tasks that received no
// votes — the requester-side check for abandoned HITs before inference.
func CoverageGaps(tasks []Vote, votes []Vote) []struct{ I, J int } {
	// tasks is interpreted loosely: any structure with I, J identifying the
	// planned pairs; here we accept Votes for symmetry with CSV imports.
	have := make(map[[2]int]bool)
	for _, v := range votes {
		p := v.Pair()
		have[[2]int{p.I, p.J}] = true
	}
	var gaps []struct{ I, J int }
	seen := make(map[[2]int]bool)
	for _, t := range tasks {
		p := t.Pair()
		key := [2]int{p.I, p.J}
		if seen[key] {
			continue
		}
		seen[key] = true
		if !have[key] {
			gaps = append(gaps, struct{ I, J int }{I: p.I, J: p.J})
		}
	}
	return gaps
}
