package crowd

import (
	"testing"

	"crowdrank/internal/graph"
)

func TestVotePairAndValue(t *testing.T) {
	tests := []struct {
		name      string
		vote      Vote
		wantPair  graph.Pair
		wantValue float64
	}{
		{"forwardPrefersLow", Vote{Worker: 0, I: 1, J: 3, PrefersI: true}, graph.Pair{I: 1, J: 3}, 1},
		{"forwardPrefersHigh", Vote{Worker: 0, I: 1, J: 3, PrefersI: false}, graph.Pair{I: 1, J: 3}, 0},
		{"reversedPrefersLow", Vote{Worker: 0, I: 3, J: 1, PrefersI: false}, graph.Pair{I: 1, J: 3}, 1},
		{"reversedPrefersHigh", Vote{Worker: 0, I: 3, J: 1, PrefersI: true}, graph.Pair{I: 1, J: 3}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.vote.Pair(); got != tc.wantPair {
				t.Errorf("Pair = %v, want %v", got, tc.wantPair)
			}
			if got := tc.vote.Value(); got != tc.wantValue {
				t.Errorf("Value = %v, want %v", got, tc.wantValue)
			}
		})
	}
}

func TestVoteValidate(t *testing.T) {
	good := Vote{Worker: 2, I: 0, J: 1, PrefersI: true}
	if err := good.Validate(3, 3); err != nil {
		t.Errorf("valid vote rejected: %v", err)
	}
	bad := []Vote{
		{Worker: 0, I: 0, J: 0},  // self comparison
		{Worker: 0, I: -1, J: 1}, // negative object
		{Worker: 0, I: 0, J: 5},  // object out of range
		{Worker: 5, I: 0, J: 1},  // worker out of range
		{Worker: -1, I: 0, J: 1}, // negative worker
	}
	for i, v := range bad {
		if err := v.Validate(3, 3); err == nil {
			t.Errorf("bad vote %d accepted: %+v", i, v)
		}
	}
}

func sampleVotes() []Vote {
	return []Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},
		{Worker: 1, I: 1, J: 0, PrefersI: true}, // same pair, opposite
		{Worker: 0, I: 1, J: 2, PrefersI: true},
		{Worker: 2, I: 2, J: 1, PrefersI: false},
	}
}

func TestByPairAndByWorker(t *testing.T) {
	votes := sampleVotes()
	byPair := ByPair(votes)
	if len(byPair[graph.Pair{I: 0, J: 1}]) != 2 {
		t.Errorf("pair (0,1) group = %v", byPair[graph.Pair{I: 0, J: 1}])
	}
	if len(byPair[graph.Pair{I: 1, J: 2}]) != 2 {
		t.Errorf("pair (1,2) group = %v", byPair[graph.Pair{I: 1, J: 2}])
	}
	byWorker := ByWorker(votes)
	if len(byWorker[0]) != 2 || len(byWorker[1]) != 1 || len(byWorker[2]) != 1 {
		t.Errorf("ByWorker = %v", byWorker)
	}
}

func TestPairsAndWorkersSorted(t *testing.T) {
	votes := sampleVotes()
	pairs := Pairs(votes)
	if len(pairs) != 2 || pairs[0] != (graph.Pair{I: 0, J: 1}) || pairs[1] != (graph.Pair{I: 1, J: 2}) {
		t.Errorf("Pairs = %v", pairs)
	}
	workers := Workers(votes)
	if len(workers) != 3 || workers[0] != 0 || workers[2] != 2 {
		t.Errorf("Workers = %v", workers)
	}
}

func TestMajorityPreference(t *testing.T) {
	votes := sampleVotes()
	pref := MajorityPreference(votes)
	// Pair (0,1): worker 0 says 0<1 (value 1), worker 1 says 1<0 (value 0).
	if got := pref[graph.Pair{I: 0, J: 1}]; got != 0.5 {
		t.Errorf("pref(0,1) = %v, want 0.5", got)
	}
	// Pair (1,2): worker 0 says 1<2 (value 1), worker 2 vote (2,1,false)
	// means prefers 1, i.e. 1<2 (value 1).
	if got := pref[graph.Pair{I: 1, J: 2}]; got != 1 {
		t.Errorf("pref(1,2) = %v, want 1", got)
	}
}
