package crowd

import (
	"strings"
	"testing"
)

func TestClean(t *testing.T) {
	votes := []Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},  // ok
		{Worker: 0, I: 0, J: 1, PrefersI: true},  // duplicate submission
		{Worker: 0, I: 1, J: 0, PrefersI: false}, // same answer, reversed encoding -> duplicate
		{Worker: 0, I: 0, J: 1, PrefersI: false}, // conflicting repeat: kept
		{Worker: 1, I: 2, J: 2, PrefersI: true},  // self pair
		{Worker: 1, I: 0, J: 9, PrefersI: true},  // object out of range
		{Worker: 9, I: 0, J: 1, PrefersI: true},  // worker out of range
		{Worker: -1, I: 0, J: 1, PrefersI: true}, // negative worker
		{Worker: 1, I: -2, J: 1, PrefersI: true}, // negative object
		{Worker: 2, I: 1, J: 2, PrefersI: false}, // ok
	}
	clean, report := Clean(votes, 3, 3, true)
	if report.Kept != 3 || len(clean) != 3 {
		t.Fatalf("report = %+v, clean = %v", report, clean)
	}
	if report.DroppedDuplicates != 2 {
		t.Errorf("duplicates = %d, want 2", report.DroppedDuplicates)
	}
	if report.DroppedInvalidPair != 3 {
		t.Errorf("invalid pairs = %d, want 3", report.DroppedInvalidPair)
	}
	if report.DroppedInvalidWorker != 2 {
		t.Errorf("invalid workers = %d, want 2", report.DroppedInvalidWorker)
	}
	if !strings.Contains(report.String(), "kept 3") {
		t.Errorf("report string = %q", report.String())
	}
}

func TestCleanWithoutDedupe(t *testing.T) {
	votes := []Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},
		{Worker: 0, I: 0, J: 1, PrefersI: true},
	}
	clean, report := Clean(votes, 2, 1, false)
	if len(clean) != 2 || report.DroppedDuplicates != 0 {
		t.Errorf("dedupe disabled but votes dropped: %+v", report)
	}
}

func TestCleanDoesNotMutateInput(t *testing.T) {
	votes := []Vote{{Worker: 0, I: 0, J: 1, PrefersI: true}}
	Clean(votes, 2, 1, true)
	if votes[0] != (Vote{Worker: 0, I: 0, J: 1, PrefersI: true}) {
		t.Error("input mutated")
	}
}

func TestCoverageGaps(t *testing.T) {
	tasks := []Vote{
		{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}, {I: 2, J: 1}, // duplicate task (1,2)
	}
	votes := []Vote{
		{Worker: 0, I: 1, J: 0, PrefersI: true}, // covers (0,1)
	}
	gaps := CoverageGaps(tasks, votes)
	if len(gaps) != 2 {
		t.Fatalf("gaps = %v, want 2 entries", gaps)
	}
	want := map[[2]int]bool{{1, 2}: true, {0, 2}: true}
	for _, g := range gaps {
		if !want[[2]int{g.I, g.J}] {
			t.Errorf("unexpected gap %+v", g)
		}
	}
}
