// Package crowd defines the shared vocabulary between the crowdsourcing
// platform, the simulator, the truth-discovery step, and the baselines: a
// Vote is one worker's answer to one pairwise comparison task.
package crowd

import (
	"fmt"
	"sort"

	"crowdrank/internal/graph"
)

// Vote records that worker Worker compared objects I and J and preferred I
// (PrefersI true means O_I ≺ O_J, i.e. I should rank before J).
type Vote struct {
	Worker   int
	I, J     int
	PrefersI bool
}

// Pair returns the canonical pair this vote answers.
func (v Vote) Pair() graph.Pair { return graph.Pair{I: v.I, J: v.J}.Canon() }

// Value returns the paper's x_ij^k encoding with respect to the canonical
// pair (low index first): 1 when the worker prefers the lower-indexed
// object, 0 otherwise.
func (v Vote) Value() float64 {
	prefersLow := v.PrefersI
	if v.I > v.J {
		prefersLow = !v.PrefersI
	}
	if prefersLow {
		return 1
	}
	return 0
}

// Validate checks vote fields against the object universe [0, n) and worker
// universe [0, m).
func (v Vote) Validate(n, m int) error {
	if v.I < 0 || v.I >= n || v.J < 0 || v.J >= n {
		return fmt.Errorf("crowd: vote pair (%d,%d) outside object range [0,%d)", v.I, v.J, n)
	}
	if v.I == v.J {
		return fmt.Errorf("crowd: vote compares object %d with itself", v.I)
	}
	if v.Worker < 0 || v.Worker >= m {
		return fmt.Errorf("crowd: worker %d outside range [0,%d)", v.Worker, m)
	}
	return nil
}

// ByPair groups votes by canonical pair, preserving input order within each
// group.
func ByPair(votes []Vote) map[graph.Pair][]Vote {
	out := make(map[graph.Pair][]Vote)
	for _, v := range votes {
		p := v.Pair()
		out[p] = append(out[p], v)
	}
	return out
}

// ByWorker groups votes by worker id, preserving input order within each
// group.
func ByWorker(votes []Vote) map[int][]Vote {
	out := make(map[int][]Vote)
	for _, v := range votes {
		out[v.Worker] = append(out[v.Worker], v)
	}
	return out
}

// Pairs returns the distinct canonical pairs covered by votes in sorted
// order.
func Pairs(votes []Vote) []graph.Pair {
	set := make(map[graph.Pair]bool)
	for _, v := range votes {
		set[v.Pair()] = true
	}
	out := make([]graph.Pair, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// Workers returns the distinct worker ids appearing in votes, sorted.
func Workers(votes []Vote) []int {
	set := make(map[int]bool)
	for _, v := range votes {
		set[v.Worker] = true
	}
	out := make([]int, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// MajorityPreference returns, for each canonical pair, the fraction of votes
// preferring the lower-indexed object — unweighted majority voting, the
// naive aggregation the paper's truth discovery improves upon.
func MajorityPreference(votes []Vote) map[graph.Pair]float64 {
	sums := make(map[graph.Pair]float64)
	counts := make(map[graph.Pair]int)
	for _, v := range votes {
		p := v.Pair()
		sums[p] += v.Value()
		counts[p]++
	}
	out := make(map[graph.Pair]float64, len(sums))
	for p, s := range sums {
		out[p] = s / float64(counts[p])
	}
	return out
}
