package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"crowdrank/internal/baselines/btl"
	"crowdrank/internal/baselines/crowdbt"
	"crowdrank/internal/baselines/qs"
	"crowdrank/internal/baselines/rc"
	"crowdrank/internal/kendall"
	"crowdrank/internal/platform"
	"crowdrank/internal/simulate"
)

// baselineResult reports one competing method on one round.
type baselineResult struct {
	Accuracy float64
	Tau      float64
	Elapsed  time.Duration
	// Latency is the simulated marketplace turnaround an interactive method
	// would incur (zero for non-interactive methods).
	Latency time.Duration
}

// runSAPS runs the paper's pipeline on a shared round.
func runSAPS(round *Round) (*baselineResult, error) {
	res, err := InferRound(round)
	if err != nil {
		return nil, err
	}
	return &baselineResult{Accuracy: res.Accuracy, Tau: res.Tau, Elapsed: res.Elapsed}, nil
}

// runRC runs the RepeatChoice baseline on a shared round.
func runRC(round *Round) (*baselineResult, error) {
	rng := rand.New(rand.NewPCG(round.Cfg.Seed^0xaa11, 5))
	start := time.Now()
	ranking, err := rc.Rank(round.Cfg.N, round.Votes, rng)
	if err != nil {
		return nil, err
	}
	return scoreBaseline(ranking, round, time.Since(start), 0)
}

// runQS runs the QuickSort Condorcet baseline on a shared round.
func runQS(round *Round) (*baselineResult, error) {
	rng := rand.New(rand.NewPCG(round.Cfg.Seed^0xbb22, 5))
	start := time.Now()
	ranking, err := qs.Rank(round.Cfg.N, round.Votes, rng)
	if err != nil {
		return nil, err
	}
	return scoreBaseline(ranking, round, time.Since(start), 0)
}

// runBTL runs the plain Bradley-Terry control baseline on a shared round.
func runBTL(round *Round) (*baselineResult, error) {
	start := time.Now()
	model, err := btl.Fit(round.Cfg.N, round.Votes, btl.DefaultParams())
	if err != nil {
		return nil, err
	}
	return scoreBaseline(model.Ranking(), round, time.Since(start), 0)
}

// crowdBTBudget mirrors the round's budget for the interactive protocol:
// the same number of unique comparisons at the same workers-per-task.
func crowdBTBudget(round *Round) platform.Budget {
	return platform.Budget{
		Total:          float64(round.L * round.Cfg.WorkersPerTask),
		Reward:         1,
		WorkersPerTask: round.Cfg.WorkersPerTask,
	}
}

// runCrowdBT runs the interactive CrowdBT baseline against a fresh oracle
// with the same worker pool statistics and the same budget as the round.
// roundLatency models per-round marketplace turnaround.
func runCrowdBT(round *Round, refitEvery int, roundLatency time.Duration) (*baselineResult, error) {
	rng := rand.New(rand.NewPCG(round.Cfg.Seed^0xcc33, 5))
	pool, err := simulate.NewCrowd(round.Cfg.Workers, round.Cfg.Dist, round.Cfg.Level, rng)
	if err != nil {
		return nil, err
	}
	oracle, err := simulate.NewGroundTruthOracle(pool, round.Truth, rng)
	if err != nil {
		return nil, err
	}
	session, err := platform.NewInteractiveSession(oracle, crowdBTBudget(round), roundLatency, rng)
	if err != nil {
		return nil, err
	}
	params := crowdbt.DefaultActiveParams()
	params.RefitEvery = refitEvery
	params.Fit.Epochs = 25
	start := time.Now()
	model, err := crowdbt.Active(session, round.Cfg.N, round.Cfg.Workers, params, rng)
	if err != nil {
		return nil, err
	}
	return scoreBaseline(model.Ranking(), round, time.Since(start), session.SimulatedLatency())
}

func scoreBaseline(ranking []int, round *Round, elapsed, latency time.Duration) (*baselineResult, error) {
	acc, err := kendall.Accuracy(ranking, round.Truth)
	if err != nil {
		return nil, err
	}
	tau, err := kendall.Tau(ranking, round.Truth)
	if err != nil {
		return nil, err
	}
	return &baselineResult{Accuracy: acc, Tau: tau, Elapsed: elapsed, Latency: latency}, nil
}

// Table1 reproduces Table I: SAPS versus RC, QS and (interactive) CrowdBT
// at r = 0.5 across object counts and both quality distributions, reporting
// accuracy, Kendall tau and time. Shapes to reproduce: SAPS and CrowdBT are
// accurate while RC and QS collapse under the sparse per-worker coverage;
// RC is fastest; CrowdBT is orders of magnitude slower end-to-end because
// it is interactive (its simulated marketplace latency is reported
// separately).
func Table1(w io.Writer, scale Scale) error {
	header(w, "Table I: comparison with baselines (r=0.5)")
	sizes := []int{100, 200, 300}
	refitEvery := 200
	if scale == ScaleQuick {
		sizes = []int{30, 60}
		refitEvery = 50
	}
	const roundLatency = 30 * time.Second // one marketplace turnaround per comparison
	t := newTable(w, "distribution", "n", "method", "accuracy", "tau", "compute", "latency(sim)")
	for _, dist := range bothDistributions {
		for _, n := range sizes {
			cfg := DefaultRunConfig(n, 0.5, uint64(n)*3+uint64(dist)*17)
			cfg.Dist = dist
			round, err := NewRound(cfg)
			if err != nil {
				return fmt.Errorf("table1 n=%d: %w", n, err)
			}
			methods := []struct {
				name string
				run  func() (*baselineResult, error)
			}{
				{"SAPS", func() (*baselineResult, error) { return runSAPS(round) }},
				{"RC", func() (*baselineResult, error) { return runRC(round) }},
				{"QS", func() (*baselineResult, error) { return runQS(round) }},
				{"BTL", func() (*baselineResult, error) { return runBTL(round) }},
				{"CrowdBT", func() (*baselineResult, error) { return runCrowdBT(round, refitEvery, roundLatency) }},
			}
			for _, m := range methods {
				res, err := m.run()
				if err != nil {
					return fmt.Errorf("table1 %s n=%d: %w", m.name, n, err)
				}
				t.row(dist.String(), n, m.name, res.Accuracy, res.Tau, res.Elapsed, res.Latency)
			}
		}
	}
	return nil
}

// Fig6 reproduces Figure 6: SAPS versus the baselines across selection
// ratios and worker-quality levels (Gaussian distribution, as in the
// paper's reported subset). Shapes to reproduce: accuracy grows with r and
// with quality for every method; SAPS is always top-2; RC/QS are no better
// than random at small r.
func Fig6(w io.Writer, scale Scale) error {
	header(w, "Figure 6: SAPS vs baselines across budget and worker quality (Gaussian)")
	n := 100
	ratios := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	refitEvery := 100
	repeats := 3 // average over seeds: single runs are noisy at low quality
	if scale == ScaleQuick {
		n = 40
		ratios = []float64{0.1, 0.5, 0.9}
		refitEvery = 50
		repeats = 1
	}
	levels := []simulate.QualityLevel{simulate.LowQuality, simulate.MediumQuality, simulate.HighQuality}
	t := newTable(w, "quality", "ratio", "method", "accuracy", "tau")
	methodNames := []string{"SAPS", "RC", "QS", "BTL", "CrowdBT"}
	for _, level := range levels {
		for _, r := range ratios {
			accSum := make(map[string]float64, len(methodNames))
			tauSum := make(map[string]float64, len(methodNames))
			for rep := 0; rep < repeats; rep++ {
				cfg := DefaultRunConfig(n, r, uint64(r*100)+uint64(level)*23+uint64(rep)*1009)
				cfg.Level = level
				round, err := NewRound(cfg)
				if err != nil {
					return fmt.Errorf("fig6 level=%v r=%v: %w", level, r, err)
				}
				methods := map[string]func() (*baselineResult, error){
					"SAPS":    func() (*baselineResult, error) { return runSAPS(round) },
					"RC":      func() (*baselineResult, error) { return runRC(round) },
					"QS":      func() (*baselineResult, error) { return runQS(round) },
					"BTL":     func() (*baselineResult, error) { return runBTL(round) },
					"CrowdBT": func() (*baselineResult, error) { return runCrowdBT(round, refitEvery, 0) },
				}
				for _, name := range methodNames {
					res, err := methods[name]()
					if err != nil {
						return fmt.Errorf("fig6 %s: %w", name, err)
					}
					accSum[name] += res.Accuracy
					tauSum[name] += res.Tau
				}
			}
			for _, name := range methodNames {
				t.row(level.String(), fmt.Sprintf("%.1f", r), name,
					accSum[name]/float64(repeats), tauSum[name]/float64(repeats))
			}
		}
	}
	return nil
}
