package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"crowdrank/internal/core"
	"crowdrank/internal/crowd"
	"crowdrank/internal/des"
	"crowdrank/internal/faults"
	"crowdrank/internal/graph"
	"crowdrank/internal/kendall"
	"crowdrank/internal/platform"
	"crowdrank/internal/simulate"
	"crowdrank/internal/taskgen"
)

// Faults sweeps marketplace loss against ranking accuracy: each row injects
// a higher HIT dropout rate (plus a constant 5% spam floor) into a seeded
// unreliable round, collects with and without the repair protocol, and runs
// inference over whatever survives sanitization. The table shows how
// delivery, residual task-graph coverage, and accuracy degrade as the crowd
// gets flakier — and how much of the loss bounded reposting buys back.
func Faults(w io.Writer, scale Scale) error {
	n := 60
	if scale == ScaleQuick {
		n = 30
	}
	if err := faultSweep(w, n, false); err != nil {
		return err
	}
	return faultSweep(w, n, true)
}

func faultSweep(w io.Writer, n int, repair bool) error {
	mode := "no repair"
	params := des.CollectParams{Deadline: 30 * time.Minute, Reward: 1}
	if repair {
		mode = "repair: 2 reposts, 25% slack"
		params.MaxReposts = 2
	}
	header(w, fmt.Sprintf("Faults: dropout rate vs accuracy (n=%d, r=0.5, w=5, spam=0.05, %s)", n, mode))
	t := newTable(w, "dropout", "delivered", "repaired", "coverage", "accuracy")
	for _, dropout := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		acc, coverage, stats, err := faultRound(n, dropout, params, repair)
		if err != nil {
			return fmt.Errorf("faults dropout=%.1f: %w", dropout, err)
		}
		delivered := fmt.Sprintf("%d/%d", stats.Delivered, stats.PlannedAnswers)
		t.row(fmt.Sprintf("%.2f", dropout), delivered, stats.Repaired, coverage, acc)
	}
	return nil
}

// faultRound simulates one unreliable round through the discrete-event
// marketplace with fault injection, sanitizes the delivered votes, and
// scores inference against the hidden truth. It returns the accuracy, the
// fraction of planned pairs that kept at least one valid vote, and the raw
// collection stats.
func faultRound(n int, dropout float64, params des.CollectParams, repair bool) (float64, float64, *des.CollectStats, error) {
	const pool, perTask = 30, 5
	seed := uint64(n)*1009 + uint64(dropout*100)
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))

	l, err := taskgen.PairsForRatio(n, 0.5)
	if err != nil {
		return 0, 0, nil, err
	}
	plan, err := taskgen.Generate(n, l, rng)
	if err != nil {
		return 0, 0, nil, err
	}
	truth, err := simulate.GroundTruth(n, rng)
	if err != nil {
		return 0, 0, nil, err
	}
	crowdPool, err := simulate.NewCrowd(pool, simulate.Gaussian, simulate.MediumQuality, rng)
	if err != nil {
		return 0, 0, nil, err
	}
	oracle, err := simulate.NewGroundTruthOracle(crowdPool, truth, rng)
	if err != nil {
		return 0, 0, nil, err
	}
	hits, err := platform.PackHITs(plan.Pairs(), 1)
	if err != nil {
		return 0, 0, nil, err
	}
	inj, err := faults.NewInjector(faults.Profile{
		Dropout:   dropout,
		Malformed: 0.05,
		Seed:      seed*31 + 7,
	}, n, pool)
	if err != nil {
		return 0, 0, nil, err
	}
	market, err := des.New(oracle, des.DefaultWorkerModel(), rng)
	if err != nil {
		return 0, 0, nil, err
	}
	if repair {
		params.RepairBudget = 0.25 * float64(l*perTask)
	}
	res, err := market.RunBatchFaulty(hits, perTask, inj, params)
	if err != nil {
		return 0, 0, nil, err
	}

	valid, _ := crowd.Clean(res.Votes, n, pool, true)
	inferred, err := core.Infer(n, pool, valid, core.DefaultOptions(),
		rand.New(rand.NewPCG(seed+1, seed^0x51afd54db5f78a11)))
	if err != nil {
		return 0, 0, nil, err
	}
	acc, err := kendall.Accuracy(inferred.Ranking, truth)
	if err != nil {
		return 0, 0, nil, err
	}
	return acc, pairCoverage(plan.Pairs(), valid), &res.Stats, nil
}

// pairCoverage is the fraction of planned pairs with at least one valid
// delivered vote — the residual task graph that survived collection.
func pairCoverage(pairs []graph.Pair, votes []crowd.Vote) float64 {
	if len(pairs) == 0 {
		return 1
	}
	have := make(map[graph.Pair]bool, len(votes))
	for _, v := range votes {
		lo, hi := v.I, v.J
		if lo > hi {
			lo, hi = hi, lo
		}
		have[graph.Pair{I: lo, J: hi}] = true
	}
	covered := 0
	for _, pr := range pairs {
		lo, hi := pr.I, pr.J
		if lo > hi {
			lo, hi = hi, lo
		}
		if have[graph.Pair{I: lo, J: hi}] {
			covered++
		}
	}
	return float64(covered) / float64(len(pairs))
}
