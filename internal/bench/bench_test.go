package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRunProducesSaneResult(t *testing.T) {
	cfg := DefaultRunConfig(40, 0.3, 99)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.5 || res.Accuracy > 1 {
		t.Errorf("accuracy = %v", res.Accuracy)
	}
	if res.L == 0 || res.Votes != res.L*cfg.WorkersPerTask {
		t.Errorf("L=%d votes=%d", res.L, res.Votes)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultRunConfig(30, 0.4, 7)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy != b.Accuracy || a.OneEdges != b.OneEdges {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestExperimentsRunAtQuickScale(t *testing.T) {
	// Every experiment must complete at quick scale; spot-check that output
	// contains its header and at least one data row.
	experiments := map[string]func(io.Writer, Scale) error{
		"fig3":       Fig3,
		"fig4":       Fig4,
		"fig5":       Fig5,
		"table1":     Table1,
		"fig6":       Fig6,
		"amt":        AMT,
		"conv":       Convergence,
		"ablation":   Ablation,
		"makespan":   Makespan,
		"robustness": Robustness,
		"workers":    Workers,
		"topk":       TopK,
	}
	if testing.Short() {
		// Keep only the cheapest in -short mode.
		experiments = map[string]func(io.Writer, Scale) error{"fig5": Fig5, "conv": Convergence}
	}
	for name, fn := range experiments {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := fn(&buf, ScaleQuick); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") {
				t.Errorf("%s output has no header:\n%s", name, out)
			}
			if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
				t.Errorf("%s output too short:\n%s", name, out)
			}
		})
	}
}

func TestScaleString(t *testing.T) {
	if ScaleQuick.String() != "quick" || ScalePaper.String() != "paper" {
		t.Error("scale names wrong")
	}
	if Scale(9).String() == "" {
		t.Error("unknown scale should print")
	}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	tab := newTable(&buf, "a", "b")
	tab.row("x", 1.5)
	tab.row(42, "y")
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table output:\n%s", out)
	}
	if !strings.Contains(lines[1], "1.5000") {
		t.Errorf("float formatting wrong: %q", lines[1])
	}
}

func TestSpearmanFloats(t *testing.T) {
	a := []float64{0.1, 0.2, 0.3, 0.4}
	if rho := spearmanFloats(a, a); rho != 1 {
		t.Errorf("self rho = %v", rho)
	}
	rev := []float64{0.4, 0.3, 0.2, 0.1}
	if rho := spearmanFloats(a, rev); rho != -1 {
		t.Errorf("reversed rho = %v", rho)
	}
}

func TestRanksOf(t *testing.T) {
	ranks := ranksOf([]float64{0.3, 0.1, 0.2})
	want := []int{2, 0, 1}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestNewRoundDeterministic(t *testing.T) {
	cfg := DefaultRunConfig(25, 0.4, 5)
	a, err := NewRound(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRound(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Votes) != len(b.Votes) {
		t.Fatal("vote counts differ")
	}
	for i := range a.Votes {
		if a.Votes[i] != b.Votes[i] {
			t.Fatal("rounds differ under the same config")
		}
	}
}
