package bench

import (
	"fmt"
	"io"
	"math/rand/v2"

	"crowdrank/internal/core"
	"crowdrank/internal/crowd"
	"crowdrank/internal/kendall"
	"crowdrank/internal/platform"
	"crowdrank/internal/simulate"
	"crowdrank/internal/taskgen"
)

// AMT reproduces the Section VI-D study on the synthetic PubFig stand-in:
// 10- and 20-image sets of closely machine-ranked celebrity photos
// (adjacent rank gap <= 46), judged by a human-like Thurstone crowd at
// w in {100, 125, 150, 200} workers per comparison and selection ratios
// r in {0.25, 0.5, 0.75, 1}. As in the paper there is no ground truth, so
// the reported metric is the Kendall agreement between the exact search
// (TAPS at 10 images where its factorial lists fit; Held-Karp DP at 20) and
// SAPS — the paper's observation to reproduce is that SAPS almost always
// returns the same ranking as the exact method.
func AMT(w io.Writer, scale Scale) error {
	header(w, "AMT study (synthetic PubFig): exact-vs-SAPS agreement, no ground truth")
	imageCounts := []int{10, 20}
	workerCounts := []int{100, 125, 150, 200}
	ratios := []float64{0.25, 0.5, 0.75, 1}
	if scale == ScaleQuick {
		workerCounts = []int{100}
		ratios = []float64{0.5, 1}
	}

	rng := rand.New(rand.NewPCG(2024, 1015))
	set, err := simulate.NewImageSet(simulate.DefaultPubFigParams(), rng)
	if err != nil {
		return fmt.Errorf("amt: %w", err)
	}

	t := newTable(w, "images", "workers/HIT", "ratio", "exact", "agreement", "sapsAcc*", "exactAcc*")
	for _, k := range imageCounts {
		images, err := set.PickClose(k, 46, rng)
		if err != nil {
			return fmt.Errorf("amt pick %d: %w", k, err)
		}
		for _, workersPerHIT := range workerCounts {
			for _, ratio := range ratios {
				row, err := amtRun(set, images, workersPerHIT, ratio, rng)
				if err != nil {
					return fmt.Errorf("amt k=%d w=%d r=%v: %w", k, workersPerHIT, ratio, err)
				}
				t.row(k, workersPerHIT, fmt.Sprintf("%.2f", ratio), row.exactName,
					row.agreement, row.sapsLatent, row.exactLatent)
			}
		}
	}
	fmt.Fprintln(w, "(*latent-score accuracy shown for diagnostics only; the paper has no ground truth)")
	return nil
}

type amtRow struct {
	exactName   string
	agreement   float64
	sapsLatent  float64
	exactLatent float64
}

func amtRun(set *simulate.ImageSet, images []int, workersPerHIT int, ratio float64, rng *rand.Rand) (*amtRow, error) {
	n := len(images)
	// The AMT crowd is large: the pool is 2x the per-HIT assignment.
	poolSize := workersPerHIT * 2
	pool, err := simulate.NewCrowd(poolSize, simulate.Uniform, simulate.MediumQuality, rng)
	if err != nil {
		return nil, err
	}
	oracle, err := simulate.NewHumanOracle(set, images, pool, 0.35, rng)
	if err != nil {
		return nil, err
	}

	l, err := taskgen.PairsForRatio(n, ratio)
	if err != nil {
		return nil, err
	}
	plan, err := taskgen.Generate(n, l, rng)
	if err != nil {
		return nil, err
	}
	hits, err := platform.PackHITs(plan.Pairs(), 1)
	if err != nil {
		return nil, err
	}
	assigned, err := platform.AssignWorkers(hits, poolSize, workersPerHIT, rng)
	if err != nil {
		return nil, err
	}
	collected, err := platform.RunNonInteractive(hits, assigned, oracle, 0.025)
	if err != nil {
		return nil, err
	}

	// Run the shared pipeline once up to the closure, then search twice.
	opts := core.DefaultOptions()
	sapsRes, exactRes, exactName, err := amtSearchBoth(n, poolSize, collected.Votes, opts, rng)
	if err != nil {
		return nil, err
	}

	agreement, err := kendall.Accuracy(sapsRes, exactRes)
	if err != nil {
		return nil, err
	}
	// Diagnostics only: agreement with the hidden latent-score order.
	latent := oracle.ScoreRanking()
	sapsLatent, err := kendall.Accuracy(sapsRes, latent)
	if err != nil {
		return nil, err
	}
	exactLatent, err := kendall.Accuracy(exactRes, latent)
	if err != nil {
		return nil, err
	}
	return &amtRow{
		exactName:   exactName,
		agreement:   agreement,
		sapsLatent:  sapsLatent,
		exactLatent: exactLatent,
	}, nil
}

// amtSearchBoth runs SAPS and the exact searcher over the same inferred
// closure (identical Step 1-3 output, including the smoothing draws),
// mirroring the paper's TAPS-vs-SAPS comparison.
func amtSearchBoth(n, m int, votes []crowd.Vote, opts core.Options, rng *rand.Rand) (saps, exact []int, exactName string, err error) {
	cl, err := core.BuildClosure(n, m, votes, opts, rand.New(rand.NewPCG(7, rng.Uint64())))
	if err != nil {
		return nil, nil, "", err
	}
	sapsParams := opts.SAPS
	sapsParams.Objective = opts.Objective
	sapsRun, err := core.InferFromClosure(cl.Closure, core.SearcherSAPS, sapsParams, rand.New(rand.NewPCG(11, 17)))
	if err != nil {
		return nil, nil, "", err
	}

	// TAPS's factorial lists fit only up to ~8 objects under the all-pairs
	// objective; the 20-image setting uses the exact Held-Karp DP.
	exactSearcher := core.SearcherHeldKarp
	exactName = "HeldKarp"
	if n <= 8 {
		exactSearcher = core.SearcherTAPS
		exactName = "TAPS"
	}
	exactRun, err := core.InferFromClosure(cl.Closure, exactSearcher, sapsParams, rand.New(rand.NewPCG(11, 19)))
	if err != nil {
		return nil, nil, "", err
	}
	return sapsRun.Path, exactRun.Path, exactName, nil
}
