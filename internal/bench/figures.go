package bench

import (
	"fmt"
	"io"

	"crowdrank/internal/core"
	"crowdrank/internal/simulate"
)

// bothDistributions enumerates the two worker-quality distributions the
// simulated experiments compare.
var bothDistributions = []simulate.QualityDistribution{simulate.Gaussian, simulate.Uniform}

// Fig3 reproduces Figure 3: SAPS result-inference time versus the number of
// objects (paper: n = 100..1000 at r = 0.1, medium worker quality, both
// distributions). The paper's observation to reproduce: SAPS scales to
// n = 1000 within minutes and worker-quality distribution barely affects
// time.
func Fig3(w io.Writer, scale Scale) error {
	header(w, "Figure 3: inference time vs number of objects (r=0.1, medium quality)")
	sizes := []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	if scale == ScaleQuick {
		sizes = []int{50, 100, 150, 200}
	}
	t := newTable(w, "n", "distribution", "l", "accuracy", "total", "step4(search)")
	for _, dist := range bothDistributions {
		for _, n := range sizes {
			cfg := DefaultRunConfig(n, 0.1, uint64(n)*7+uint64(dist))
			cfg.Dist = dist
			cfg.Opts.Searcher = core.SearcherSAPS
			res, err := Run(cfg)
			if err != nil {
				return fmt.Errorf("fig3 n=%d: %w", n, err)
			}
			t.row(n, dist.String(), res.L, res.Accuracy, res.Elapsed, res.Timings.Search)
		}
	}
	return nil
}

// Fig4 reproduces Figure 4: SAPS time versus the selection ratio (budget)
// at fixed n, including the per-step breakdown and 1-edge counts the paper
// discusses (Step 4 dominates; the Step 1 vs Step 2 split tracks the number
// of 1-edges, which is higher under the Gaussian quality distribution).
func Fig4(w io.Writer, scale Scale) error {
	n := 1000
	ratios := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if scale == ScaleQuick {
		n = 120
		ratios = []float64{0.1, 0.3, 0.5, 0.7, 1.0}
	}
	header(w, fmt.Sprintf("Figure 4: inference time vs selection ratio (n=%d, medium quality)", n))
	t := newTable(w, "ratio", "distribution", "oneEdges", "step1", "step2", "step3", "step4", "total")
	for _, dist := range bothDistributions {
		for _, r := range ratios {
			cfg := DefaultRunConfig(n, r, uint64(r*1000)+uint64(dist)*3)
			cfg.Dist = dist
			res, err := Run(cfg)
			if err != nil {
				return fmt.Errorf("fig4 r=%v: %w", r, err)
			}
			t.row(fmt.Sprintf("%.1f", r), dist.String(), res.OneEdges,
				res.Timings.TruthDiscovery, res.Timings.Smoothing,
				res.Timings.Propagation, res.Timings.Search, res.Elapsed)
		}
	}
	return nil
}

// Fig5 reproduces Figure 5: ranking accuracy versus the number of objects
// and versus the selection ratio (medium worker quality, both
// distributions). The shapes to reproduce: accuracy is high even at
// r = 0.1, grows with n (transitivity supplies more inferred preferences)
// and with r, and the Gaussian distribution beats the Uniform one.
func Fig5(w io.Writer, scale Scale) error {
	header(w, "Figure 5: ranking accuracy vs n and selection ratio (medium quality)")
	sizes := []int{100, 200, 400, 600, 800, 1000}
	ratios := []float64{0.1, 0.3, 0.5, 0.7, 1.0}
	if scale == ScaleQuick {
		sizes = []int{50, 100, 200}
		ratios = []float64{0.1, 0.5, 1.0}
	}
	t := newTable(w, "n", "ratio", "distribution", "accuracy", "tau")
	for _, dist := range bothDistributions {
		for _, n := range sizes {
			for _, r := range ratios {
				cfg := DefaultRunConfig(n, r, uint64(n)*13+uint64(r*100)+uint64(dist))
				cfg.Dist = dist
				res, err := Run(cfg)
				if err != nil {
					return fmt.Errorf("fig5 n=%d r=%v: %w", n, r, err)
				}
				t.row(n, fmt.Sprintf("%.1f", r), dist.String(), res.Accuracy, res.Tau)
			}
		}
	}
	return nil
}

// Convergence reproduces the Section V-A claim that truth discovery
// converges within ~10 iterations for most cases, reporting the iteration
// counts across the Figure 5 grid.
func Convergence(w io.Writer, scale Scale) error {
	header(w, "Truth-discovery convergence (Section V-A claim: <= ~10 iterations)")
	sizes := []int{100, 300, 500}
	ratios := []float64{0.1, 0.5, 1.0}
	if scale == ScaleQuick {
		sizes = []int{40, 80}
		ratios = []float64{0.2, 0.8}
	}
	t := newTable(w, "n", "ratio", "distribution", "iterations", "converged")
	for _, dist := range bothDistributions {
		for _, n := range sizes {
			for _, r := range ratios {
				cfg := DefaultRunConfig(n, r, uint64(n)+uint64(r*10)+uint64(dist)*31)
				cfg.Dist = dist
				cfg.Opts.Truth.MaxIterations = 50
				res, err := Run(cfg)
				if err != nil {
					return fmt.Errorf("conv n=%d r=%v: %w", n, r, err)
				}
				t.row(n, fmt.Sprintf("%.1f", r), dist.String(), res.TruthIterations, res.TruthConverged)
			}
		}
	}
	return nil
}
