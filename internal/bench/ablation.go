package bench

import (
	"fmt"
	"io"
	"math/rand/v2"

	"crowdrank/internal/core"
	"crowdrank/internal/kendall"
	"crowdrank/internal/search"
)

// Ablation sweeps the design choices DESIGN.md calls out:
//
//   - the direct/indirect blend weight alpha (Step 3),
//   - the propagation hop bound H (Step 3),
//   - the evidence-shrinkage prior strength (Step 3),
//   - the smoothing clamp (Step 2),
//   - the Step 4 objective reading (all-pairs vs the literal consecutive
//     product — the DESIGN.md "objective reading" finding), and
//   - SAPS restart count.
func Ablation(w io.Writer, scale Scale) error {
	n, ratio := 100, 0.1
	if scale == ScaleQuick {
		n = 50
	}

	if err := ablateAlpha(w, n, ratio); err != nil {
		return err
	}
	if err := ablateHops(w, n, ratio); err != nil {
		return err
	}
	if err := ablatePrior(w, n, ratio); err != nil {
		return err
	}
	if err := ablateSmoothing(w, n, ratio); err != nil {
		return err
	}
	if err := ablateObjective(w, n, ratio); err != nil {
		return err
	}
	if err := ablateStarts(w, n, ratio); err != nil {
		return err
	}
	return ablatePolish(w, n, ratio)
}

func ablateAlpha(w io.Writer, n int, ratio float64) error {
	header(w, fmt.Sprintf("Ablation: direct/indirect blend alpha (n=%d, r=%.1f)", n, ratio))
	t := newTable(w, "alpha", "accuracy", "tau")
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		cfg := DefaultRunConfig(n, ratio, 4242)
		cfg.Opts.Propagate.Alpha = alpha
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("ablation alpha=%v: %w", alpha, err)
		}
		t.row(fmt.Sprintf("%.2f", alpha), res.Accuracy, res.Tau)
	}
	return nil
}

func ablateHops(w io.Writer, n int, ratio float64) error {
	header(w, fmt.Sprintf("Ablation: propagation hop bound (n=%d, r=%.1f)", n, ratio))
	t := newTable(w, "hops", "accuracy", "tau", "step3")
	for _, hops := range []int{1, 2, 3, 4, 5} {
		cfg := DefaultRunConfig(n, ratio, 4242)
		cfg.Opts.Propagate.MaxHops = hops
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("ablation hops=%d: %w", hops, err)
		}
		t.row(hops, res.Accuracy, res.Tau, res.Timings.Propagation)
	}
	return nil
}

func ablatePrior(w io.Writer, n int, ratio float64) error {
	header(w, fmt.Sprintf("Ablation: indirect-evidence shrinkage prior (n=%d, r=%.1f)", n, ratio))
	t := newTable(w, "prior", "accuracy", "tau")
	for _, prior := range []float64{0, 0.5, 1, 2, 5} {
		cfg := DefaultRunConfig(n, ratio, 4242)
		cfg.Opts.Propagate.PriorStrength = prior
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("ablation prior=%v: %w", prior, err)
		}
		t.row(fmt.Sprintf("%.1f", prior), res.Accuracy, res.Tau)
	}
	return nil
}

func ablateSmoothing(w io.Writer, n int, ratio float64) error {
	header(w, fmt.Sprintf("Ablation: smoothing clamp [minDelta, maxDelta] (n=%d, r=%.1f)", n, ratio))
	t := newTable(w, "minDelta", "maxDelta", "accuracy", "oneEdges")
	for _, clamp := range [][2]float64{{1e-4, 0.1}, {1e-3, 0.25}, {1e-3, 0.499}, {0.05, 0.499}} {
		cfg := DefaultRunConfig(n, ratio, 4242)
		cfg.Opts.Smooth.MinDelta = clamp[0]
		cfg.Opts.Smooth.MaxDelta = clamp[1]
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("ablation clamp=%v: %w", clamp, err)
		}
		t.row(fmt.Sprintf("%.4f", clamp[0]), fmt.Sprintf("%.3f", clamp[1]), res.Accuracy, res.OneEdges)
	}
	return nil
}

// ablateObjective demonstrates the DESIGN.md objective-reading finding on
// live data: over the same closure, optimizing the all-pairs objective
// preserves accuracy while optimizing the literal consecutive product
// degrades it even as its own score improves.
func ablateObjective(w io.Writer, n int, ratio float64) error {
	header(w, fmt.Sprintf("Ablation: Step 4 objective reading (n=%d, r=%.1f)", n, ratio))
	cfg := DefaultRunConfig(n, ratio, 4242)
	round, err := NewRound(cfg)
	if err != nil {
		return err
	}
	cl, err := core.BuildClosure(cfg.N, cfg.Workers, round.Votes, cfg.Opts,
		rand.New(rand.NewPCG(cfg.Seed, 3)))
	if err != nil {
		return err
	}
	t := newTable(w, "objective", "iterations", "accuracy", "tau", "logProb")
	for _, obj := range []search.Objective{search.ObjectiveAllPairs, search.ObjectiveConsecutive} {
		for _, iters := range []int{1, 200, 1000} {
			params := cfg.Opts.SAPS
			params.Objective = obj
			params.Iterations = iters
			res, err := core.InferFromClosure(cl.Closure, core.SearcherSAPS, params,
				rand.New(rand.NewPCG(9, 9)))
			if err != nil {
				return fmt.Errorf("ablation objective=%v: %w", obj, err)
			}
			acc, err := kendall.Accuracy(res.Path, round.Truth)
			if err != nil {
				return err
			}
			tau, err := kendall.Tau(res.Path, round.Truth)
			if err != nil {
				return err
			}
			t.row(obj.String(), iters, acc, tau, fmt.Sprintf("%.1f", res.LogProb))
		}
	}
	return nil
}

func ablatePolish(w io.Writer, n int, ratio float64) error {
	header(w, fmt.Sprintf("Ablation: insertion-polish sweeps after SAPS (n=%d, r=%.1f)", n, ratio))
	t := newTable(w, "sweeps", "accuracy", "tau")
	for _, sweeps := range []int{0, 2, 8, 16} {
		cfg := DefaultRunConfig(n, ratio, 4242)
		cfg.Opts.Searcher = core.SearcherSAPS
		cfg.Opts.PolishSweeps = sweeps
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("ablation polish=%d: %w", sweeps, err)
		}
		t.row(sweeps, res.Accuracy, res.Tau)
	}
	return nil
}

func ablateStarts(w io.Writer, n int, ratio float64) error {
	header(w, fmt.Sprintf("Ablation: SAPS restart count (n=%d, r=%.1f)", n, ratio))
	t := newTable(w, "starts", "accuracy", "step4")
	for _, starts := range []int{1, 4, 8, 16} {
		cfg := DefaultRunConfig(n, ratio, 4242)
		cfg.Opts.Searcher = core.SearcherSAPS
		cfg.Opts.SAPS.Starts = starts
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("ablation starts=%d: %w", starts, err)
		}
		t.row(starts, res.Accuracy, res.Timings.Search)
	}
	return nil
}
