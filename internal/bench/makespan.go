package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/des"
	"crowdrank/internal/graph"
	"crowdrank/internal/platform"
	"crowdrank/internal/simulate"
	"crowdrank/internal/taskgen"
)

// Makespan quantifies the paper's non-interactive-is-faster claim with the
// discrete-event marketplace simulator: the same budget (l comparisons,
// w workers each) is crowdsourced (a) as one non-interactive batch and
// (b) one comparison at a time as interactive protocols require, and the
// virtual wall-clock makespans are compared. The speedup grows with the
// budget because batch answering parallelizes across the pool while the
// interactive protocol serializes marketplace round-trips — the mechanism
// behind the introduction's time-sensitivity argument.
func Makespan(w io.Writer, scale Scale) error {
	header(w, "Makespan: non-interactive batch vs interactive round-trips (DES marketplace)")
	sizes := []int{50, 100, 200}
	if scale == ScaleQuick {
		sizes = []int{30, 60}
	}
	const (
		ratio          = 0.3
		workersPerTask = 5
		poolSize       = 50
	)
	t := newTable(w, "n", "comparisons", "batch", "interactive", "speedup")
	for _, n := range sizes {
		rng := rand.New(rand.NewPCG(uint64(n), 909))
		l, err := taskgen.PairsForRatio(n, ratio)
		if err != nil {
			return fmt.Errorf("makespan n=%d: %w", n, err)
		}
		plan, err := taskgen.Generate(n, l, rng)
		if err != nil {
			return fmt.Errorf("makespan n=%d: %w", n, err)
		}
		truth, err := simulate.GroundTruth(n, rng)
		if err != nil {
			return err
		}
		pool, err := simulate.NewCrowd(poolSize, simulate.Gaussian, simulate.MediumQuality, rng)
		if err != nil {
			return err
		}
		oracle, err := simulate.NewGroundTruthOracle(pool, truth, rng)
		if err != nil {
			return err
		}
		pairs := plan.Pairs()
		hits, err := platform.PackHITs(pairs, 1)
		if err != nil {
			return err
		}

		batchMarket, err := des.New(oracle, des.DefaultWorkerModel(), rand.New(rand.NewPCG(uint64(n), 1)))
		if err != nil {
			return err
		}
		batch, err := batchMarket.RunBatch(hits, workersPerTask)
		if err != nil {
			return fmt.Errorf("makespan batch n=%d: %w", n, err)
		}

		interMarket, err := des.New(oracle, des.DefaultWorkerModel(), rand.New(rand.NewPCG(uint64(n), 1)))
		if err != nil {
			return err
		}
		next := 0
		inter, err := interMarket.RunInteractive(workersPerTask, len(pairs),
			func(_ []crowd.Vote) (graph.Pair, bool) {
				if next >= len(pairs) {
					return graph.Pair{}, false
				}
				p := pairs[next]
				next++
				return p, true
			})
		if err != nil {
			return fmt.Errorf("makespan interactive n=%d: %w", n, err)
		}

		speedup := float64(inter.Makespan) / float64(batch.Makespan)
		t.row(n, l, roundDur(batch.Makespan), roundDur(inter.Makespan),
			fmt.Sprintf("%.0fx", speedup))
	}
	return nil
}

func roundDur(d time.Duration) time.Duration { return d.Round(time.Second) }
