package bench

import (
	"fmt"
	"io"
	"math/rand/v2"

	"crowdrank/internal/baselines/crowdbt"
	"crowdrank/internal/crowd"
	"crowdrank/internal/simulate"
	"crowdrank/internal/taskgen"
)

// Robustness stresses the pipeline beyond the paper's evaluation grid:
//
//   - adversary sweep: a growing fraction of the pool always inverts its
//     votes, probing where weighted-majority truth discovery breaks (it
//     cannot flip anti-correlated workers the way CrowdBT's eta < 1/2 can);
//   - replication sweep: votes per comparison w from 1 to 15, showing the
//     accuracy value of redundancy under a fixed task set;
//   - pool-size sweep: the same total answer volume spread over more or
//     fewer distinct workers, probing the truth-discovery identifiability
//     limit (few workers = many answers each = good quality estimates).
func Robustness(w io.Writer, scale Scale) error {
	n := 60
	if scale == ScaleQuick {
		n = 30
	}
	if err := adversarySweep(w, n); err != nil {
		return err
	}
	if err := replicationSweep(w, n); err != nil {
		return err
	}
	return poolSweep(w, n)
}

// adversaryRound simulates a round where a fraction of workers always
// invert the true preference and the rest err at 5%.
func adversaryRound(n int, adversaries, honest int, seed uint64) (*Round, error) {
	rng := rand.New(rand.NewPCG(seed, 404))
	l, err := taskgen.PairsForRatio(n, 0.5)
	if err != nil {
		return nil, err
	}
	plan, err := taskgen.Generate(n, l, rng)
	if err != nil {
		return nil, err
	}
	truth, err := simulate.GroundTruth(n, rng)
	if err != nil {
		return nil, err
	}
	pos := make([]int, n)
	for r, o := range truth {
		pos[o] = r
	}
	total := adversaries + honest
	var votes []crowd.Vote
	for _, pr := range plan.Pairs() {
		workers := rng.Perm(total)[:10]
		for _, worker := range workers {
			truthPref := pos[pr.I] < pos[pr.J]
			prefers := truthPref
			switch {
			case worker < adversaries:
				prefers = !truthPref // always inverts
			case rng.Float64() < 0.05:
				prefers = !truthPref // honest 5% slip
			}
			votes = append(votes, crowd.Vote{Worker: worker, I: pr.I, J: pr.J, PrefersI: prefers})
		}
	}
	cfg := DefaultRunConfig(n, 0.5, seed)
	cfg.Workers = total
	return &Round{Cfg: cfg, L: l, Votes: votes, Truth: truth}, nil
}

func adversarySweep(w io.Writer, n int) error {
	header(w, fmt.Sprintf("Robustness: adversarial worker fraction (n=%d, r=0.5, pool=20, w=10)", n))
	t := newTable(w, "adversaries", "fraction", "pipeline", "crowdbt")
	const pool = 20
	for _, adversaries := range []int{0, 2, 4, 6, 8, 10} {
		round, err := adversaryRound(n, adversaries, pool-adversaries, uint64(adversaries)*97+5)
		if err != nil {
			return fmt.Errorf("robustness adversaries=%d: %w", adversaries, err)
		}
		ours, err := InferRound(round)
		if err != nil {
			return err
		}
		bt, err := runCrowdBTBatch(round)
		if err != nil {
			return err
		}
		t.row(adversaries, fmt.Sprintf("%.2f", float64(adversaries)/pool),
			ours.Accuracy, bt.Accuracy)
	}
	return nil
}

// runCrowdBTBatch fits CrowdBT offline on the round's votes (no interactive
// protocol) for the adversary comparison.
func runCrowdBTBatch(round *Round) (*baselineResult, error) {
	model, err := crowdbt.Fit(round.Cfg.N, round.Cfg.Workers, round.Votes, crowdbt.DefaultParams())
	if err != nil {
		return nil, err
	}
	return scoreBaseline(model.Ranking(), round, 0, 0)
}

func replicationSweep(w io.Writer, n int) error {
	header(w, fmt.Sprintf("Robustness: votes per comparison (n=%d, r=0.3, medium quality)", n))
	t := newTable(w, "w", "votes", "accuracy", "oneEdges")
	for _, perTask := range []int{1, 3, 5, 10, 15} {
		cfg := DefaultRunConfig(n, 0.3, uint64(perTask)*13+7)
		cfg.WorkersPerTask = perTask
		cfg.Workers = 30
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("robustness w=%d: %w", perTask, err)
		}
		t.row(perTask, res.Votes, res.Accuracy, res.OneEdges)
	}
	return nil
}

func poolSweep(w io.Writer, n int) error {
	header(w, fmt.Sprintf("Robustness: worker-pool size at fixed answer volume (n=%d, r=0.3, w=10)", n))
	t := newTable(w, "pool", "answers/worker", "accuracy")
	for _, pool := range []int{10, 20, 40, 80, 160} {
		cfg := DefaultRunConfig(n, 0.3, uint64(pool)*29+3)
		cfg.Workers = pool
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("robustness pool=%d: %w", pool, err)
		}
		perWorker := res.Votes / pool
		t.row(pool, perWorker, res.Accuracy)
	}
	return nil
}
