package bench

import (
	"fmt"
	"io"

	"crowdrank/internal/kendall"
)

// TopK evaluates the paper's future-work extension: how good is the
// inferred ranking's prefix as a top-k answer? For each budget the table
// reports the top-k overlap with the ground truth's top-k across
// k in {1, 5, 10, 20}. The observed shape: small-k identification lags the
// full-ranking accuracy at sparse budgets — pinning down the single best
// object depends on the few comparisons that happen to touch it — which is
// exactly why the paper flags top-k as future work needing its own task
// assignment rather than a by-product of full ranking.
func TopK(w io.Writer, scale Scale) error {
	n := 100
	if scale == ScaleQuick {
		n = 50
	}
	header(w, fmt.Sprintf("Top-k extension: prefix quality vs budget (n=%d, medium quality)", n))
	ks := []int{1, 5, 10, 20}
	t := newTable(w, "ratio", "accuracy", "top1", "top5", "top10", "top20")
	for _, r := range []float64{0.05, 0.1, 0.3, 0.5} {
		cfg := DefaultRunConfig(n, r, uint64(r*1000)+77)
		round, err := NewRound(cfg)
		if err != nil {
			return fmt.Errorf("topk r=%v: %w", r, err)
		}
		res, err := InferRound(round)
		if err != nil {
			return fmt.Errorf("topk r=%v: %w", r, err)
		}
		overlaps := make([]float64, len(ks))
		for i, k := range ks {
			ov, err := kendall.TopKOverlap(res.Ranking, round.Truth, k)
			if err != nil {
				return err
			}
			overlaps[i] = ov
		}
		t.row(fmt.Sprintf("%.2f", r), res.Accuracy,
			overlaps[0], overlaps[1], overlaps[2], overlaps[3])
	}
	return nil
}
