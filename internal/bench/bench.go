// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section VI) on the simulated substrate.
// Each experiment prints the same rows/series the paper reports; the
// per-experiment index in DESIGN.md maps figure/table ids to the functions
// here.
//
// Two scales are supported: ScaleQuick shrinks the grids so the whole
// battery runs in seconds (used by `go test -bench` and CI), ScalePaper
// uses the paper's sizes (n up to 1000) and is what cmd/experiments runs by
// default.
package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"crowdrank/internal/core"
	"crowdrank/internal/crowd"
	"crowdrank/internal/kendall"
	"crowdrank/internal/platform"
	"crowdrank/internal/simulate"
	"crowdrank/internal/taskgen"
)

// Scale selects experiment sizes.
type Scale int

const (
	// ScaleQuick shrinks every grid for fast runs.
	ScaleQuick Scale = iota + 1
	// ScalePaper reproduces the paper's sizes.
	ScalePaper
)

func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// RunConfig describes one simulated crowdsourcing round plus inference.
type RunConfig struct {
	// N objects, budget as a selection ratio of all pairs.
	N     int
	Ratio float64
	// Workers in the pool; WorkersPerTask answer each comparison.
	Workers        int
	WorkersPerTask int
	// Dist and Level select the worker-quality scenario.
	Dist  simulate.QualityDistribution
	Level simulate.QualityLevel
	// Seed drives every random choice in the round.
	Seed uint64
	// Opts configures the inference pipeline.
	Opts core.Options
}

// DefaultRunConfig mirrors the common experimental setting.
func DefaultRunConfig(n int, ratio float64, seed uint64) RunConfig {
	return RunConfig{
		N:              n,
		Ratio:          ratio,
		Workers:        30,
		WorkersPerTask: 10,
		Dist:           simulate.Gaussian,
		Level:          simulate.MediumQuality,
		Seed:           seed,
		Opts:           core.DefaultOptions(),
	}
}

// Round is the raw material of one simulated round, reusable across
// competing inference methods.
type Round struct {
	Cfg   RunConfig
	L     int
	Votes []crowd.Vote
	Truth []int
}

// NewRound simulates the crowdsourcing round described by cfg.
func NewRound(cfg RunConfig) (*Round, error) {
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x6b79c18aa9aafe71))
	l, err := taskgen.PairsForRatio(cfg.N, cfg.Ratio)
	if err != nil {
		return nil, err
	}
	plan, err := taskgen.Generate(cfg.N, l, rng)
	if err != nil {
		return nil, err
	}
	truth, err := simulate.GroundTruth(cfg.N, rng)
	if err != nil {
		return nil, err
	}
	pool, err := simulate.NewCrowd(cfg.Workers, cfg.Dist, cfg.Level, rng)
	if err != nil {
		return nil, err
	}
	oracle, err := simulate.NewGroundTruthOracle(pool, truth, rng)
	if err != nil {
		return nil, err
	}
	hits, err := platform.PackHITs(plan.Pairs(), 1)
	if err != nil {
		return nil, err
	}
	assigned, err := platform.AssignWorkers(hits, cfg.Workers, cfg.WorkersPerTask, rng)
	if err != nil {
		return nil, err
	}
	round, err := platform.RunNonInteractive(hits, assigned, oracle, 1)
	if err != nil {
		return nil, err
	}
	return &Round{Cfg: cfg, L: l, Votes: round.Votes, Truth: truth}, nil
}

// RunResult reports one pipeline run against the hidden truth.
type RunResult struct {
	Ranking         []int   // the inferred full ranking, best-first
	Accuracy        float64 // 1 - Kendall tau distance
	Tau             float64 // Kendall correlation
	Elapsed         time.Duration
	Timings         core.StepTimings
	OneEdges        int
	TruthIterations int
	TruthConverged  bool
	Votes           int
	L               int
}

// Run simulates a round and infers the ranking with the paper's pipeline.
func Run(cfg RunConfig) (*RunResult, error) {
	round, err := NewRound(cfg)
	if err != nil {
		return nil, err
	}
	return InferRound(round)
}

// InferRound runs the pipeline over an existing round.
func InferRound(round *Round) (*RunResult, error) {
	rng := rand.New(rand.NewPCG(round.Cfg.Seed^0x51afd54db5f78a11, round.Cfg.Seed))
	start := time.Now()
	res, err := core.Infer(round.Cfg.N, round.Cfg.Workers, round.Votes, round.Cfg.Opts, rng)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	acc, err := kendall.Accuracy(res.Ranking, round.Truth)
	if err != nil {
		return nil, err
	}
	tau, err := kendall.Tau(res.Ranking, round.Truth)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Ranking:         res.Ranking,
		Accuracy:        acc,
		Tau:             tau,
		Elapsed:         elapsed,
		Timings:         res.Timings,
		OneEdges:        res.OneEdges,
		TruthIterations: res.TruthIterations,
		TruthConverged:  res.TruthConverged,
		Votes:           len(round.Votes),
		L:               round.L,
	}, nil
}

// table is a minimal fixed-width text table writer for experiment output.
type table struct {
	w       io.Writer
	widths  []int
	columns []string
}

func newTable(w io.Writer, columns ...string) *table {
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
		if widths[i] < 10 {
			widths[i] = 10
		}
	}
	t := &table{w: w, widths: widths, columns: columns}
	t.row(toAny(columns)...)
	return t
}

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		var s string
		switch v := c.(type) {
		case string:
			s = v
		case float64:
			s = fmt.Sprintf("%.4f", v)
		case time.Duration:
			s = v.Round(time.Millisecond).String()
		default:
			s = fmt.Sprint(v)
		}
		width := 10
		if i < len(t.widths) {
			width = t.widths[i]
		}
		fmt.Fprintf(t.w, "%-*s  ", width, s)
	}
	fmt.Fprintln(t.w)
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
