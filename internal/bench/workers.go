package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"

	"crowdrank/internal/core"
	"crowdrank/internal/crowd"
	"crowdrank/internal/simulate"
	"crowdrank/internal/taskgen"
)

// Workers evaluates Step 1 directly — something the paper never does: how
// well do the discovered per-worker qualities track each worker's *actual*
// accuracy against the hidden truth? Reported per quality scenario as the
// Spearman rank correlation between true per-worker accuracy and estimated
// quality, plus the spammer-detection precision/recall at threshold 0.75
// when four coin-flippers join the pool.
func Workers(w io.Writer, scale Scale) error {
	n := 80
	if scale == ScaleQuick {
		n = 40
	}
	header(w, fmt.Sprintf("Worker-quality estimation (n=%d, r=0.5): estimated vs true accuracy", n))
	t := newTable(w, "distribution", "level", "spearman", "spamPrecision", "spamRecall")
	for _, dist := range bothDistributions {
		for _, level := range []simulate.QualityLevel{simulate.HighQuality, simulate.MediumQuality, simulate.LowQuality} {
			row, err := workerEstimationRun(n, dist, level)
			if err != nil {
				return fmt.Errorf("workers %v/%v: %w", dist, level, err)
			}
			t.row(dist.String(), level.String(), row.spearman, row.precision, row.recall)
		}
	}
	return nil
}

type workerRow struct {
	spearman  float64
	precision float64
	recall    float64
}

func workerEstimationRun(n int, dist simulate.QualityDistribution, level simulate.QualityLevel) (*workerRow, error) {
	const (
		honest   = 16
		spammers = 4
		perTask  = 10
	)
	total := honest + spammers
	rng := rand.New(rand.NewPCG(uint64(n)*31+uint64(dist)*7+uint64(level), 515))

	l, err := taskgen.PairsForRatio(n, 0.5)
	if err != nil {
		return nil, err
	}
	plan, err := taskgen.Generate(n, l, rng)
	if err != nil {
		return nil, err
	}
	truth, err := simulate.GroundTruth(n, rng)
	if err != nil {
		return nil, err
	}
	pos := make([]int, n)
	for r, o := range truth {
		pos[o] = r
	}
	pool, err := simulate.NewCrowd(honest, dist, level, rng)
	if err != nil {
		return nil, err
	}

	var votes []crowd.Vote
	correct := make([]float64, total)
	answered := make([]float64, total)
	for _, pr := range plan.Pairs() {
		workers := rng.Perm(total)[:perTask]
		for _, worker := range workers {
			truthPref := pos[pr.I] < pos[pr.J]
			var prefers bool
			if worker < honest {
				eps := pool.ErrorProbability(worker, rng)
				prefers = truthPref
				if rng.Float64() < eps {
					prefers = !truthPref
				}
			} else {
				prefers = rng.Float64() < 0.5 // spammer coin flip
			}
			votes = append(votes, crowd.Vote{Worker: worker, I: pr.I, J: pr.J, PrefersI: prefers})
			answered[worker]++
			if prefers == truthPref {
				correct[worker]++
			}
		}
	}

	res, err := core.Infer(n, total, votes, core.DefaultOptions(),
		rand.New(rand.NewPCG(99, uint64(n))))
	if err != nil {
		return nil, err
	}

	// Spearman rank correlation between true accuracy and estimated
	// quality over all active workers.
	trueAcc := make([]float64, total)
	for k := range trueAcc {
		if answered[k] > 0 {
			trueAcc[k] = correct[k] / answered[k]
		}
	}
	spearman := spearmanFloats(trueAcc, res.WorkerQuality)

	// Spammer detection at threshold 0.75.
	flagged := map[int]bool{}
	for k, q := range res.WorkerQuality {
		if q > 0 && q < 0.75 {
			flagged[k] = true
		}
	}
	tp := 0
	for k := honest; k < total; k++ {
		if flagged[k] {
			tp++
		}
	}
	precision := 1.0
	if len(flagged) > 0 {
		precision = float64(tp) / float64(len(flagged))
	}
	recall := float64(tp) / float64(spammers)
	return &workerRow{spearman: spearman, precision: precision, recall: recall}, nil
}

// spearmanFloats computes Spearman's rho between two equal-length float
// vectors (average ranks for ties are unnecessary at this diagnostic
// precision; ties are broken by index).
func spearmanFloats(a, b []float64) float64 {
	n := len(a)
	ra := ranksOf(a)
	rb := ranksOf(b)
	var sumSq float64
	for i := 0; i < n; i++ {
		d := float64(ra[i] - rb[i])
		sumSq += d * d
	}
	nf := float64(n)
	return 1 - 6*sumSq/(nf*(nf*nf-1))
}

func ranksOf(xs []float64) []int {
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })
	ranks := make([]int, len(xs))
	for rank, idx := range order {
		ranks[idx] = rank
	}
	return ranks
}
