package bench

import (
	"os"
	"testing"
)

// TestDumpQuickOutputs prints a subset of quick-scale experiment tables for
// manual inspection. It is skipped unless BENCH_DUMP is set, so regular test
// runs stay quiet.
func TestDumpQuickOutputs(t *testing.T) {
	if os.Getenv("BENCH_DUMP") == "" {
		t.Skip("set BENCH_DUMP=1 to dump experiment output")
	}
	for _, run := range []func() error{
		func() error { return Table1(os.Stdout, ScaleQuick) },
		func() error { return Fig6(os.Stdout, ScaleQuick) },
		func() error { return AMT(os.Stdout, ScaleQuick) },
	} {
		if err := run(); err != nil {
			t.Fatal(err)
		}
	}
}
