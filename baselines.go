package crowdrank

import (
	"fmt"
	"math/rand/v2"

	"crowdrank/internal/baselines/btl"
	"crowdrank/internal/baselines/crowdbt"
	"crowdrank/internal/baselines/mv"
	"crowdrank/internal/baselines/qs"
	"crowdrank/internal/baselines/rc"
)

// RepeatChoice aggregates the votes into a full ranking with the
// RepeatChoice rank-aggregation baseline (Ailon 2010). It is fast but needs
// dense per-worker preference coverage; under sparse budgets it is no
// better than a random guess, as the paper reports.
func RepeatChoice(n int, votes []Vote, seed uint64) ([]int, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0xe7037ed1a0b428db))
	return rc.Rank(n, toInternalVotes(votes), rng)
}

// QuickSortRank aggregates the votes with the Condorcet-graph QuickSort
// baseline (Montague-Aslam): a randomized quicksort whose comparator
// follows the pairwise majority, flipping a coin for uncompared pairs.
func QuickSortRank(n int, votes []Vote, seed uint64) ([]int, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0x8ebc6af09c88c6e3))
	return qs.Rank(n, toInternalVotes(votes), rng)
}

// MajorityRank aggregates the votes by plain majority voting followed by
// Copeland scoring (pairwise wins minus losses) — the naive baseline the
// paper's introduction contrasts with truth discovery.
func MajorityRank(n int, votes []Vote, seed uint64) ([]int, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0x589965cc75374cc3))
	majority, err := mv.NewPairwiseMajority(n, toInternalVotes(votes))
	if err != nil {
		return nil, err
	}
	return majority.CopelandRanking(rng)
}

// BordaRank aggregates the votes by majority preference fractions summed
// per object (a Borda-style score over the compared pairs).
func BordaRank(n int, votes []Vote, seed uint64) ([]int, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0x1d8e4e27c47d124f))
	majority, err := mv.NewPairwiseMajority(n, toInternalVotes(votes))
	if err != nil {
		return nil, err
	}
	return majority.BordaRanking(rng)
}

// BradleyTerryRank aggregates the votes with the plain Bradley-Terry-Luce
// model (reference [19] of the paper) fitted by minorize-maximize — the
// control baseline between the majority heuristics and CrowdBT: it models
// latent object strengths but not worker reliability.
func BradleyTerryRank(n int, votes []Vote) ([]int, error) {
	model, err := btl.Fit(n, toInternalVotes(votes), btl.DefaultParams())
	if err != nil {
		return nil, err
	}
	return model.Ranking(), nil
}

// CrowdBTResult reports the CrowdBT baseline's output.
type CrowdBTResult struct {
	// Ranking is the objects ordered by descending latent score.
	Ranking []int
	// Scores are the fitted Bradley-Terry latent scores per object.
	Scores []float64
	// Reliability holds the fitted per-worker reliability eta_k.
	Reliability []float64
}

// CrowdBTFit fits the CrowdBT model (Bradley-Terry with per-worker
// reliability, Chen et al. WSDM 2013) to a fixed vote set by gradient
// ascent — the offline use of the paper's learning-based baseline.
func CrowdBTFit(n, m int, votes []Vote) (*CrowdBTResult, error) {
	model, err := crowdbt.Fit(n, m, toInternalVotes(votes), crowdbt.DefaultParams())
	if err != nil {
		return nil, err
	}
	return &CrowdBTResult{
		Ranking:     model.Ranking(),
		Scores:      model.Scores,
		Reliability: model.Reliability,
	}, nil
}

// BaselineName identifies a baseline for the comparison helpers.
type BaselineName string

// Baselines available to CompareWithBaselines.
const (
	BaselineRC       BaselineName = "rc"
	BaselineQS       BaselineName = "qs"
	BaselineMajority BaselineName = "majority"
	BaselineBorda    BaselineName = "borda"
	BaselineCrowdBT  BaselineName = "crowdbt"
	BaselineBTL      BaselineName = "btl"
)

// RunBaseline runs one named baseline over the votes and returns its
// ranking. m (the worker-pool size) is needed only by CrowdBT.
func RunBaseline(name BaselineName, n, m int, votes []Vote, seed uint64) ([]int, error) {
	switch name {
	case BaselineRC:
		return RepeatChoice(n, votes, seed)
	case BaselineQS:
		return QuickSortRank(n, votes, seed)
	case BaselineMajority:
		return MajorityRank(n, votes, seed)
	case BaselineBorda:
		return BordaRank(n, votes, seed)
	case BaselineCrowdBT:
		res, err := CrowdBTFit(n, m, votes)
		if err != nil {
			return nil, err
		}
		return res.Ranking, nil
	case BaselineBTL:
		return BradleyTerryRank(n, votes)
	default:
		return nil, fmt.Errorf("crowdrank: unknown baseline %q", name)
	}
}
