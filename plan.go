package crowdrank

import (
	"fmt"
	"io"
	"math/rand/v2"

	"crowdrank/internal/graph"
	"crowdrank/internal/platform"
	"crowdrank/internal/taskgen"
)

// Pair identifies one pairwise comparison task between objects I and J
// (object ids are 0-based indices; pairs are canonical with I < J).
type Pair struct {
	I, J int
}

// Budget models the requester's money: each of the l unique comparisons is
// answered by WorkersPerTask workers, each paid Reward, so
// l = floor(Total / (WorkersPerTask * Reward)).
type Budget struct {
	Total          float64
	Reward         float64
	WorkersPerTask int
}

// MaxTasks returns the number of unique comparisons the budget affords.
func (b Budget) MaxTasks() (int, error) {
	return platform.Budget{Total: b.Total, Reward: b.Reward, WorkersPerTask: b.WorkersPerTask}.MaxTasks()
}

// HIT is a batch of comparisons released to a single worker as one unit.
type HIT struct {
	ID    int
	Pairs []Pair
}

// Plan is a generated task assignment: l comparison tasks over n objects
// forming a fair, high-HP-likelihood task graph.
type Plan struct {
	// N is the number of objects; L the number of comparison tasks.
	N, L int
	// Pairs lists the comparison tasks in canonical order.
	Pairs []Pair
	// SeedPath is the Hamiltonian path the task graph was seeded with.
	SeedPath []int
	// TargetDegree is the per-object degree 2L/N the fairness requirement
	// aims for.
	TargetDegree int

	taskGraph *graph.TaskGraph
}

// PlanTasks generates a task assignment with exactly l comparison tasks
// over n objects (Algorithm 1). seed makes generation reproducible.
func PlanTasks(n, l int, seed uint64) (*Plan, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	tp, err := taskgen.Generate(n, l, rng)
	if err != nil {
		return nil, err
	}
	pairs := make([]Pair, 0, tp.L)
	for _, pr := range tp.Pairs() {
		pairs = append(pairs, Pair{I: pr.I, J: pr.J})
	}
	return &Plan{
		N:            n,
		L:            tp.L,
		Pairs:        pairs,
		SeedPath:     tp.SeedPath,
		TargetDegree: tp.TargetDegree,
		taskGraph:    tp.Graph,
	}, nil
}

// PlanTasksRatio generates a task assignment covering the given selection
// ratio r of all C(n,2) pairs (the paper's budget parameterization).
func PlanTasksRatio(n int, ratio float64, seed uint64) (*Plan, error) {
	l, err := taskgen.PairsForRatio(n, ratio)
	if err != nil {
		return nil, err
	}
	return PlanTasks(n, l, seed)
}

// PlanTasksBudget generates a task assignment affordable under the budget.
func PlanTasksBudget(n int, b Budget, seed uint64) (*Plan, error) {
	l, err := b.MaxTasks()
	if err != nil {
		return nil, err
	}
	if max := taskgen.MaxPairs(n); l > max {
		l = max
	}
	return PlanTasks(n, l, seed)
}

// Degrees returns the task-graph degree of every object; fairness means
// these are (near-)equal.
func (p *Plan) Degrees() []int { return p.taskGraph.Degrees() }

// FairnessProbability returns, per object, the probability 2/3^d of being
// forced to the extreme of the ranking (Equation 2); fair plans make this
// uniform.
func (p *Plan) FairnessProbability() []float64 {
	ds := p.taskGraph.Degrees()
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = taskgen.InOutProbability(d)
	}
	return out
}

// HPLikelihoodLowerBound returns the Theorem 4.4 lower bound Pr_l for this
// plan's degree range.
func (p *Plan) HPLikelihoodLowerBound() (float64, error) {
	dmin, dmax := p.taskGraph.MinMaxDegree()
	return taskgen.HPLikelihoodLowerBound(p.N, dmin, dmax)
}

// PackHITs splits the plan's tasks into HITs of at most perHIT comparisons.
func (p *Plan) PackHITs(perHIT int) ([]HIT, error) {
	pairs := make([]graph.Pair, len(p.Pairs))
	for i, pr := range p.Pairs {
		pairs[i] = graph.Pair{I: pr.I, J: pr.J}
	}
	hits, err := platform.PackHITs(pairs, perHIT)
	if err != nil {
		return nil, err
	}
	out := make([]HIT, len(hits))
	for i, h := range hits {
		ps := make([]Pair, len(h.Pairs))
		for k, pr := range h.Pairs {
			ps[k] = Pair{I: pr.I, J: pr.J}
		}
		out[i] = HIT{ID: h.ID, Pairs: ps}
	}
	return out, nil
}

// Validate checks structural invariants of the plan: connectivity (without
// it no full ranking is recoverable, Theorem 4.2) and the presence of the
// seed Hamiltonian path.
func (p *Plan) Validate() error {
	if !p.taskGraph.Connected() {
		return fmt.Errorf("crowdrank: plan's task graph is disconnected")
	}
	if !p.taskGraph.IsHamiltonianPath(p.SeedPath) {
		return fmt.Errorf("crowdrank: plan lost its seed Hamiltonian path")
	}
	if p.taskGraph.M() != p.L {
		return fmt.Errorf("crowdrank: plan has %d edges, expected %d", p.taskGraph.M(), p.L)
	}
	return nil
}

// WriteDOT renders the plan's task graph in Graphviz DOT format for visual
// inspection of the assignment (vertex labels carry degrees, so fairness is
// visible at a glance).
func (p *Plan) WriteDOT(w io.Writer) error {
	return p.taskGraph.WriteDOT(w, "task_graph")
}
