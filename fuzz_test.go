package crowdrank

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"crowdrank/internal/core"
	"crowdrank/internal/invariant"
)

// FuzzReadVotesCSV checks that arbitrary input never panics the CSV parser
// and that successfully parsed votes survive a write/read round trip.
func FuzzReadVotesCSV(f *testing.F) {
	f.Add("worker,i,j,prefers_i\n0,1,2,true\n")
	f.Add("0,1,2,false\n3,4,5,true\n")
	f.Add("")
	f.Add("worker,i,j,prefers_i\n")
	f.Add("a,b,c,d\n")
	f.Add("0,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		votes, err := ReadVotesCSV(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteVotesCSV(&buf, votes); err != nil {
			t.Fatalf("re-encoding parsed votes failed: %v", err)
		}
		again, err := ReadVotesCSV(&buf)
		if err != nil {
			t.Fatalf("re-parsing re-encoded votes failed: %v", err)
		}
		if len(again) != len(votes) {
			t.Fatalf("round trip changed vote count: %d -> %d", len(votes), len(again))
		}
		for i := range votes {
			if again[i] != votes[i] {
				t.Fatalf("round trip changed vote %d: %+v -> %+v", i, votes[i], again[i])
			}
		}
	})
}

// FuzzKendallDistance checks the metric's bounds and the Knight/naive
// agreement on arbitrary byte-derived permutations.
func FuzzKendallDistance(f *testing.F) {
	f.Add([]byte{1, 0, 2}, []byte{0, 1, 2})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{5}, []byte{7})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		// Derive two permutations of the same length from the fuzz input by
		// sorting object ids by byte value (stable), so inputs always
		// validate.
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 || n > 64 {
			return
		}
		pa := permFromBytes(a[:n])
		pb := permFromBytes(b[:n])
		d, err := KendallTauDistance(pa, pb)
		if err != nil {
			t.Fatalf("valid permutations rejected: %v", err)
		}
		if d < 0 || d > 1 {
			t.Fatalf("distance %v out of [0,1]", d)
		}
		back, err := KendallTauDistance(pb, pa)
		if err != nil {
			t.Fatal(err)
		}
		if d != back {
			t.Fatalf("distance not symmetric: %v vs %v", d, back)
		}
	})
}

// FuzzInferVotes feeds arbitrary vote slices into Infer: lenient mode must
// never panic (it drops garbage and reports it), and strict mode must either
// accept exactly what ValidateVotes accepts or fail with a *VoteError.
func FuzzInferVotes(f *testing.F) {
	f.Add(5, 3, []byte{0, 0, 1, 1, 1, 2, 3, 0})
	f.Add(2, 1, []byte{})
	f.Add(3, 2, []byte{255, 255, 255, 254, 7, 7, 7, 7})
	f.Add(4, 2, []byte{0, 0, 1, 1, 0, 1, 0, 0, 1, 0, 1, 1})
	f.Fuzz(func(t *testing.T, n, m int, raw []byte) {
		if n < 1 || n > 12 || m < 1 || m > 8 {
			return
		}
		// Decode 4 bytes per vote: worker, i, j, prefers. Bytes are shifted
		// so ids land both inside and outside the valid ranges (including
		// negatives), exercising every sanitization branch.
		var votes []Vote
		for k := 0; k+3 < len(raw) && len(votes) < 200; k += 4 {
			votes = append(votes, Vote{
				Worker:   int(raw[k]) - 2,
				I:        int(raw[k+1]) - 2,
				J:        int(raw[k+2]) - 2,
				PrefersI: raw[k+3]%2 == 0,
			})
		}

		res, err := Infer(n, m, votes, WithSeed(1))
		if err == nil {
			if oracleErr := invariant.VerifyRanking(n, res.Ranking); oracleErr != nil {
				t.Fatalf("invariant oracle rejected the ranking: %v", oracleErr)
			}
			if res.Sanitization.Kept+res.Sanitization.Dropped() != res.Sanitization.Input {
				t.Fatalf("sanitize accounting mismatch: %+v", res.Sanitization)
			}
		}
		// A graceful error (e.g. nothing survives sanitization) is fine;
		// panics are not.

		_, strictErr := Infer(n, m, votes, WithSeed(1), WithStrictVotes())
		var ve *VoteError
		if wantErr := ValidateVotes(n, m, votes); wantErr != nil {
			// Bad input must surface as a typed *VoteError in strict mode.
			if !errors.As(strictErr, &ve) {
				t.Fatalf("strict Infer err %v disagrees with ValidateVotes err %v", strictErr, wantErr)
			}
		} else if errors.As(strictErr, &ve) {
			t.Fatalf("strict Infer flagged vote %d but ValidateVotes accepted the input", ve.Index)
		}
	})
}

// FuzzPipelineInvariants runs the full Steps 1-3 pipeline on arbitrary
// sanitized vote sets and holds the output against the invariant oracle:
// whenever BuildClosure succeeds, the closure must be a complete normalized
// tournament (Theorem 5.1's precondition), and whenever Infer succeeds on
// the same votes, the ranking must be a permutation. Structural corruption
// anywhere in truth discovery, smoothing, or propagation surfaces here
// instead of as a silently wrong ranking.
func FuzzPipelineInvariants(f *testing.F) {
	f.Add(5, 3, []byte{0, 0, 1, 1, 1, 2, 3, 0, 2, 0, 2, 1})
	f.Add(3, 2, []byte{0, 0, 1, 0, 1, 1, 2, 1, 0, 0, 2, 0})
	f.Add(4, 2, []byte{0, 0, 1, 1, 0, 1, 0, 0, 1, 0, 1, 1})
	f.Add(2, 1, []byte{0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, n, m int, raw []byte) {
		if n < 2 || n > 10 || m < 1 || m > 6 {
			return
		}
		var votes []Vote
		for k := 0; k+3 < len(raw) && len(votes) < 120; k += 4 {
			votes = append(votes, Vote{
				Worker:   int(raw[k]) - 2,
				I:        int(raw[k+1]) - 2,
				J:        int(raw[k+2]) - 2,
				PrefersI: raw[k+3]%2 == 0,
			})
		}
		clean, _ := SanitizeVotes(n, m, votes)
		if len(clean) == 0 {
			return
		}

		rng := rand.New(rand.NewPCG(1, 0xd1342543de82ef95))
		cl, err := core.BuildClosure(n, m, toInternalVotes(clean), core.DefaultOptions(), rng)
		if err != nil {
			return // graceful rejection is fine; invariants apply to successes
		}
		if oracleErr := invariant.VerifyTournament(cl.Closure); oracleErr != nil {
			t.Fatalf("closure violates the tournament invariant: %v", oracleErr)
		}

		res, err := Infer(n, m, clean, WithSeed(1))
		if err != nil {
			return
		}
		if oracleErr := invariant.VerifyRanking(n, res.Ranking); oracleErr != nil {
			t.Fatalf("ranking violates the permutation invariant: %v", oracleErr)
		}
	})
}

// permFromBytes builds a permutation of {0..n-1} ordered by the byte keys
// (stable insertion sort keeps it deterministic).
func permFromBytes(keys []byte) []int {
	n := len(keys)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && keys[perm[j]] < keys[perm[j-1]]; j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	return perm
}
