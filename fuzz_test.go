package crowdrank

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadVotesCSV checks that arbitrary input never panics the CSV parser
// and that successfully parsed votes survive a write/read round trip.
func FuzzReadVotesCSV(f *testing.F) {
	f.Add("worker,i,j,prefers_i\n0,1,2,true\n")
	f.Add("0,1,2,false\n3,4,5,true\n")
	f.Add("")
	f.Add("worker,i,j,prefers_i\n")
	f.Add("a,b,c,d\n")
	f.Add("0,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		votes, err := ReadVotesCSV(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteVotesCSV(&buf, votes); err != nil {
			t.Fatalf("re-encoding parsed votes failed: %v", err)
		}
		again, err := ReadVotesCSV(&buf)
		if err != nil {
			t.Fatalf("re-parsing re-encoded votes failed: %v", err)
		}
		if len(again) != len(votes) {
			t.Fatalf("round trip changed vote count: %d -> %d", len(votes), len(again))
		}
		for i := range votes {
			if again[i] != votes[i] {
				t.Fatalf("round trip changed vote %d: %+v -> %+v", i, votes[i], again[i])
			}
		}
	})
}

// FuzzKendallDistance checks the metric's bounds and the Knight/naive
// agreement on arbitrary byte-derived permutations.
func FuzzKendallDistance(f *testing.F) {
	f.Add([]byte{1, 0, 2}, []byte{0, 1, 2})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{5}, []byte{7})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		// Derive two permutations of the same length from the fuzz input by
		// sorting object ids by byte value (stable), so inputs always
		// validate.
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 || n > 64 {
			return
		}
		pa := permFromBytes(a[:n])
		pb := permFromBytes(b[:n])
		d, err := KendallTauDistance(pa, pb)
		if err != nil {
			t.Fatalf("valid permutations rejected: %v", err)
		}
		if d < 0 || d > 1 {
			t.Fatalf("distance %v out of [0,1]", d)
		}
		back, err := KendallTauDistance(pb, pa)
		if err != nil {
			t.Fatal(err)
		}
		if d != back {
			t.Fatalf("distance not symmetric: %v vs %v", d, back)
		}
	})
}

// permFromBytes builds a permutation of {0..n-1} ordered by the byte keys
// (stable insertion sort keeps it deterministic).
func permFromBytes(keys []byte) []int {
	n := len(keys)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && keys[perm[j]] < keys[perm[j-1]]; j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	return perm
}
