package crowdrank

import (
	"testing"
	"time"
)

// TestSoakLargeScale drives the full pipeline at the paper's maximum scale
// (n = 1000, r = 0.1 — half a million votes) and asserts the paper-level
// quality and the absence of pathological slowdowns. Skipped in -short
// mode.
func TestSoakLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n = 1000
	plan, err := PlanTasksRatio(n, 0.1, 2024)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(2025)
	round, err := SimulateVotes(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Votes) != plan.L*cfg.WorkersPerTask {
		t.Fatalf("votes = %d", len(round.Votes))
	}

	start := time.Now()
	res, err := Infer(plan.N, cfg.Workers, round.Votes,
		WithSeed(2026), WithSearch(SearchSAPS), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	acc, err := Accuracy(res.Ranking, round.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 0.95 at n=1000, r=0.1. Allow slack for seed variation.
	if acc < 0.93 {
		t.Errorf("accuracy = %v, want >= 0.93 (paper reports 0.95)", acc)
	}
	// Generous wall-clock ceiling: the paper's C++ testbed needed ~2
	// minutes; anything beyond that here indicates a regression.
	if elapsed > 2*time.Minute {
		t.Errorf("inference took %v", elapsed)
	}
	t.Logf("n=%d l=%d votes=%d accuracy=%.4f elapsed=%v (steps: %+v)",
		n, plan.L, len(round.Votes), acc, elapsed, res.Timings)
}

// TestSoakRepeatedSeeds verifies accuracy stability across seeds at a
// medium scale: the mean must stay high and no single seed may collapse.
func TestSoakRepeatedSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n, runs = 100, 8
	var sum, min float64 = 0, 1
	for s := 0; s < runs; s++ {
		plan, err := PlanTasksRatio(n, 0.1, uint64(s)*31+1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultSimConfig(uint64(s)*37 + 2)
		round, err := SimulateVotes(plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Infer(plan.N, cfg.Workers, round.Votes, WithSeed(uint64(s)*41+3))
		if err != nil {
			t.Fatal(err)
		}
		acc, err := Accuracy(res.Ranking, round.GroundTruth)
		if err != nil {
			t.Fatal(err)
		}
		sum += acc
		if acc < min {
			min = acc
		}
	}
	mean := sum / runs
	if mean < 0.88 {
		t.Errorf("mean accuracy over %d seeds = %v", runs, mean)
	}
	if min < 0.82 {
		t.Errorf("worst-seed accuracy = %v", min)
	}
	t.Logf("n=%d over %d seeds: mean=%.4f min=%.4f", n, runs, mean, min)
}
