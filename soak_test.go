package crowdrank

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestSoakLargeScale drives the full pipeline at the paper's maximum scale
// (n = 1000, r = 0.1 — half a million votes) and asserts the paper-level
// quality and the absence of pathological slowdowns. Skipped in -short
// mode.
func TestSoakLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n = 1000
	plan, err := PlanTasksRatio(n, 0.1, 2024)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(2025)
	round, err := SimulateVotes(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Votes) != plan.L*cfg.WorkersPerTask {
		t.Fatalf("votes = %d", len(round.Votes))
	}

	start := time.Now()
	res, err := Infer(plan.N, cfg.Workers, round.Votes,
		WithSeed(2026), WithSearch(SearchSAPS), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	acc, err := Accuracy(res.Ranking, round.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 0.95 at n=1000, r=0.1. Allow slack for seed variation.
	if acc < 0.93 {
		t.Errorf("accuracy = %v, want >= 0.93 (paper reports 0.95)", acc)
	}
	// Generous wall-clock ceiling: the paper's C++ testbed needed ~2
	// minutes; anything beyond that here indicates a regression.
	if elapsed > 2*time.Minute {
		t.Errorf("inference took %v", elapsed)
	}
	t.Logf("n=%d l=%d votes=%d accuracy=%.4f elapsed=%v (steps: %+v)",
		n, plan.L, len(round.Votes), acc, elapsed, res.Timings)
}

// TestSoakRepeatedSeeds verifies accuracy stability across seeds at a
// medium scale: the mean must stay high and no single seed may collapse.
func TestSoakRepeatedSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n, runs = 100, 8
	var sum, min float64 = 0, 1
	for s := 0; s < runs; s++ {
		plan, err := PlanTasksRatio(n, 0.1, uint64(s)*31+1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultSimConfig(uint64(s)*37 + 2)
		round, err := SimulateVotes(plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Infer(plan.N, cfg.Workers, round.Votes, WithSeed(uint64(s)*41+3))
		if err != nil {
			t.Fatal(err)
		}
		acc, err := Accuracy(res.Ranking, round.GroundTruth)
		if err != nil {
			t.Fatal(err)
		}
		sum += acc
		if acc < min {
			min = acc
		}
	}
	mean := sum / runs
	if mean < 0.88 {
		t.Errorf("mean accuracy over %d seeds = %v", runs, mean)
	}
	if min < 0.82 {
		t.Errorf("worst-seed accuracy = %v", min)
	}
	t.Logf("n=%d over %d seeds: mean=%.4f min=%.4f", n, runs, mean, min)
}

// TestSoakDaemon hammers a journaled RankServer with concurrent ingest
// goroutines and periodic deadline-bounded rank queries for a bounded
// wall-clock, then asserts every request succeeded or was backpressured
// cleanly and that the daemon leaks no goroutines across its lifetime.
func TestSoakDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		n, m     = 30, 8
		ingester = 6
		duration = 3 * time.Second
	)
	// Goroutine baseline taken before the server exists so anything the
	// daemon spawns and fails to reap is visible after Close.
	runtime.GC()
	baseline := runtime.NumGoroutine()

	cfg := DefaultServeConfig(n, m)
	cfg.Seed = 4242
	cfg.JournalPath = t.TempDir() + "/soak.wal"
	cfg.Parallelism = 2
	srv, err := NewRankServer(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		ingested int
		ranked   int
		degraded int
	)
	stop := time.Now().Add(duration)
	for g := 0; g < ingester; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(worker)+1, 77))
			for time.Now().Before(stop) {
				batch := make([]Vote, 0, 16)
				for k := 0; k < 16; k++ {
					i := rng.IntN(n)
					j := rng.IntN(n - 1)
					if j >= i {
						j++
					}
					batch = append(batch, Vote{Worker: worker, I: i, J: j, PrefersI: rng.Float64() < 0.7})
				}
				if _, err := IngestVotes(srv, batch); err != nil {
					t.Errorf("soak ingest failed: %v", err)
					return
				}
				mu.Lock()
				ingested += len(batch)
				mu.Unlock()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stop) {
			res, err := srv.Rank()
			if err != nil {
				t.Errorf("soak rank failed: %v", err)
				return
			}
			if len(res.Ranking) != n {
				t.Errorf("soak rank returned %d objects, want %d", len(res.Ranking), n)
				return
			}
			mu.Lock()
			ranked++
			if res.Degraded {
				degraded++
			}
			mu.Unlock()
			time.Sleep(50 * time.Millisecond)
		}
	}()
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if ranked == 0 || ingested == 0 {
		t.Fatalf("soak did no work: %d ingested, %d ranked", ingested, ranked)
	}
	t.Logf("soak: %d votes ingested by %d goroutines, %d rankings served (%d degraded)",
		ingested, ingester, ranked, degraded)

	// Leak check: allow the runtime a few GC cycles to reap finished
	// goroutines, then require the count back at (or below) baseline plus
	// slack for the test runtime's own machinery.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before daemon, %d after Close\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
