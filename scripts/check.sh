#!/usr/bin/env sh
# Full local gate: vet, build, and race-enabled tests for every package.
# CI and pre-commit both run exactly this.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test -race ./... =="
go test -race ./...

echo "== all checks passed =="
