#!/usr/bin/env sh
# Full local gate: formatting, vet, the domain linter, builds, race-enabled
# tests, and the invariant-tagged test variant. CI and pre-commit both run
# exactly this.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== crowdlint ./... (all 9 checks incl. lockcheck/goroleak/ackflow/srvtimeout) =="
go run ./cmd/crowdlint ./...

echo "== go build ./... =="
go build ./...

echo "== go test -race ./... =="
go test -race ./...

echo "== chaos: SIGKILL mid-ingest and mid-snapshot recovery =="
go test -count=1 -run 'TestChaos' ./internal/serve

echo "== chaos soak: exactly-once acks through the netfault proxy =="
# Short soak by default; set CROWDRANK_SOAK_BATCHES (e.g. 500) for a long
# drill. CROWDRANK_SOAK_SUMMARY captures a JSON run summary (CI uploads it).
go test -count=1 -run 'TestChaosSoakExactlyOnce' ./internal/client

echo "== chaos failover: exactly-once across leader SIGKILL + promotion =="
# Short soak by default; CROWDRANK_FAILOVER_BATCHES lengthens it and
# CROWDRANK_FAILOVER_SUMMARY captures a JSON run summary (CI uploads it).
go test -count=1 -run 'TestChaosFailoverExactlyOnce' ./internal/replica

echo "== fuzz smoke: journal replay =="
go test -run='^$' -fuzz=FuzzJournalReplay -fuzztime=20s ./internal/serve

echo "== fuzz smoke: snapshot load =="
go test -run='^$' -fuzz=FuzzSnapshotLoad -fuzztime=20s ./internal/snapshot

echo "== go test -tags crowdrank_invariants ./... =="
go test -tags crowdrank_invariants ./...

echo "== bench delta: BenchmarkInfer / BenchmarkPlanTasks vs scripts/bench.baseline =="
# Report-only: machines differ, so the delta informs rather than gates.
# Delete scripts/bench.baseline to re-baseline after an intentional change.
bench_tmp=$(mktemp)
trap 'rm -f "$bench_tmp"' EXIT
go test -run '^$' -bench '^(BenchmarkInfer|BenchmarkPlanTasks)$' -benchtime 1x -count 3 . >"$bench_tmp"
if [ -f scripts/bench.baseline ]; then
	go run ./cmd/benchdelta -old scripts/bench.baseline -new "$bench_tmp"
else
	cp "$bench_tmp" scripts/bench.baseline
	echo "no baseline found; recorded scripts/bench.baseline for future runs"
fi

echo "== all checks passed =="
