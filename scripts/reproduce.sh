#!/usr/bin/env bash
# Reproduce the full evaluation: build, test, benchmark, and regenerate
# every table and figure at paper scale (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build and vet =="
go build ./...
go vet ./...

echo "== tests =="
go test ./... 2>&1 | tee test_output.txt

echo "== quick-scale benchmarks =="
go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

echo "== paper-scale experiments (minutes) =="
go run ./cmd/experiments -exp all -scale paper -tsv results_tsv | tee experiments_paper.txt

echo "== figures =="
mkdir -p figures
go run ./cmd/plot -in results_tsv/fig5.tsv -x n -y accuracy -series distribution -filter ratio=0.1 -out figures/fig5_r01.svg
go run ./cmd/plot -in results_tsv/fig3.tsv -x n -y total -series distribution -title "Figure 3: inference time (ms) vs n" -out figures/fig3.svg
go run ./cmd/plot -in results_tsv/fig6.tsv -x ratio -y accuracy -series method -filter quality=medium -out figures/fig6_medium.svg

echo "done: test_output.txt, bench_output.txt, experiments_paper.txt, results_tsv/, figures/"
