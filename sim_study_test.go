package crowdrank

import (
	"testing"
	"time"
)

func TestSimulateImageRanking(t *testing.T) {
	cfg := DefaultImageStudyConfig(1)
	round, err := SimulateImageRanking(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if round.N != 10 {
		t.Errorf("N = %d", round.N)
	}
	wantVotes := 10 * 9 / 2 / 2 * cfg.WorkersPerComparison // r=0.5 of 45 pairs
	if len(round.Votes) != (45/2+1)*cfg.WorkersPerComparison && len(round.Votes) != wantVotes {
		// PairsForRatio rounds; accept either rounding of 22.5.
		t.Errorf("votes = %d", len(round.Votes))
	}
	if round.Spent <= 0 {
		t.Error("spend not accounted")
	}
	// Determinism under a fixed seed.
	round2, err := SimulateImageRanking(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Votes) != len(round2.Votes) {
		t.Fatal("image study not deterministic")
	}
	for i := range round.Votes {
		if round.Votes[i] != round2.Votes[i] {
			t.Fatal("image study votes differ under same seed")
		}
	}
}

func TestSimulateImageRankingInferAgreement(t *testing.T) {
	// The paper's AMT metric: SAPS agrees with the exact searcher.
	cfg := DefaultImageStudyConfig(2)
	round, err := SimulateImageRanking(cfg)
	if err != nil {
		t.Fatal(err)
	}
	saps, err := Infer(round.N, round.Workers, round.Votes,
		WithSeed(3), WithSearch(SearchSAPS))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Infer(round.N, round.Workers, round.Votes,
		WithSeed(3), WithSearch(SearchHeldKarp))
	if err != nil {
		t.Fatal(err)
	}
	agreement, err := Accuracy(saps.Ranking, exact.Ranking)
	if err != nil {
		t.Fatal(err)
	}
	if agreement < 0.9 {
		t.Errorf("SAPS-vs-exact agreement = %v", agreement)
	}
}

func TestSimulateImageRankingValidation(t *testing.T) {
	for name, mutate := range map[string]func(*ImageStudyConfig){
		"images":  func(c *ImageStudyConfig) { c.Images = 1 },
		"gap":     func(c *ImageStudyConfig) { c.MaxRankGap = 0 },
		"workers": func(c *ImageStudyConfig) { c.WorkersPerComparison = 0 },
		"reward":  func(c *ImageStudyConfig) { c.Reward = 0 },
	} {
		cfg := DefaultImageStudyConfig(4)
		mutate(&cfg)
		if _, err := SimulateImageRanking(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestRunInteractiveCrowdBT(t *testing.T) {
	cfg := DefaultSimConfig(5)
	budget := Budget{Total: 600, Reward: 1, WorkersPerTask: cfg.WorkersPerTask} // 60 rounds
	res, err := RunInteractiveCrowdBT(20, budget, cfg, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 60 {
		t.Errorf("rounds = %d, want 60", res.Rounds)
	}
	if res.SimulatedLatency != 60*time.Minute {
		t.Errorf("latency = %v", res.SimulatedLatency)
	}
	if res.Spent != 600 {
		t.Errorf("spent = %v", res.Spent)
	}
	if len(res.Ranking) != 20 || len(res.GroundTruth) != 20 {
		t.Error("result shapes wrong")
	}
	if _, err := RunInteractiveCrowdBT(1, budget, cfg, 0); err == nil {
		t.Error("n=1 should fail")
	}
	bad := cfg
	bad.Distribution = 0
	if _, err := RunInteractiveCrowdBT(20, budget, bad, 0); err == nil {
		t.Error("invalid distribution should fail")
	}
}

// ---- Failure injection across the public pipeline ----

func TestInferSingleVotePair(t *testing.T) {
	// Degenerate input: only one pair ever compared across 4 objects. The
	// pipeline must still return a full permutation (with 0.5-weight
	// fallbacks), never panic.
	votes := []Vote{{Worker: 0, I: 0, J: 1, PrefersI: true}}
	res, err := Infer(4, 1, votes, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranking) != 4 {
		t.Fatalf("ranking = %v", res.Ranking)
	}
	seen := make([]bool, 4)
	for _, v := range res.Ranking {
		if v < 0 || v >= 4 || seen[v] {
			t.Fatalf("not a permutation: %v", res.Ranking)
		}
		seen[v] = true
	}
	if res.UninformedPairs == 0 {
		t.Error("expected uninformed pairs to be reported")
	}
}

func TestInferUnanimousWrongEdge(t *testing.T) {
	// Every worker inverts exactly one pair of an otherwise perfect vote
	// set: the transitive evidence must overrule the unanimous wrong edge.
	n := 8
	var votes []Vote
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			prefers := true
			if i == 2 && j == 3 {
				prefers = false // unanimous lie: 3 before 2
			}
			for w := 0; w < 6; w++ {
				votes = append(votes, Vote{Worker: w, I: i, J: j, PrefersI: prefers})
			}
		}
	}
	res, err := Infer(n, 6, votes, WithSeed(2), WithSearch(SearchHeldKarp), WithAlpha(0.3))
	if err != nil {
		t.Fatal(err)
	}
	identity := []int{0, 1, 2, 3, 4, 5, 6, 7}
	acc, err := Accuracy(res.Ranking, identity)
	if err != nil {
		t.Fatal(err)
	}
	// One corrupted pair out of 28: accuracy must stay near-perfect
	// (at most the lied-about pair wrong).
	if acc < 1-2.0/28 {
		t.Errorf("accuracy = %v with a single unanimous wrong edge", acc)
	}
}

func TestInferVotesOutsideUniverse(t *testing.T) {
	votes := []Vote{{Worker: 0, I: 0, J: 9, PrefersI: true}}
	if _, err := Infer(4, 1, votes, WithSeed(1)); err == nil {
		t.Error("vote outside object universe should fail")
	}
	votes = []Vote{{Worker: 5, I: 0, J: 1, PrefersI: true}}
	if _, err := Infer(4, 2, votes, WithSeed(1)); err == nil {
		t.Error("vote from unknown worker should fail")
	}
}

func TestPlanRejectsUnderconnectedBudget(t *testing.T) {
	// l < n-1 cannot contain a Hamiltonian path (Theorem 4.2): planning
	// must refuse rather than emit an unusable task set.
	if _, err := PlanTasks(10, 5, 1); err == nil {
		t.Error("budget below the spanning-path minimum should fail")
	}
}

func TestInferManyDuplicateVotes(t *testing.T) {
	// The same worker voting the same pair repeatedly (multiple HITs
	// containing the pair) must be handled as repeated observations.
	var votes []Vote
	for rep := 0; rep < 50; rep++ {
		votes = append(votes, Vote{Worker: 0, I: 0, J: 1, PrefersI: true})
		votes = append(votes, Vote{Worker: 1, I: 1, J: 2, PrefersI: true})
	}
	res, err := Infer(3, 2, votes, WithSeed(3), WithSearch(SearchHeldKarp))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if res.Ranking[i] != want[i] {
			t.Fatalf("ranking = %v, want %v", res.Ranking, want)
		}
	}
}

func TestResultSuspectWorkers(t *testing.T) {
	// Six honest workers plus two inverters over a dense vote set.
	n := 12
	var votes []Vote
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for w := 0; w < 8; w++ {
				prefers := w < 6 // workers 6,7 always invert
				votes = append(votes, Vote{Worker: w, I: i, J: j, PrefersI: prefers})
			}
		}
	}
	res, err := Infer(n, 9, votes, WithSeed(4)) // worker 8 idle
	if err != nil {
		t.Fatal(err)
	}
	suspects := res.SuspectWorkers(0.75)
	if len(suspects) != 2 {
		t.Fatalf("suspects = %v, want the two inverters", suspects)
	}
	for _, s := range suspects {
		if s != 6 && s != 7 {
			t.Errorf("unexpected suspect %d", s)
		}
	}
}
