package crowdrank_test

import (
	"testing"

	"crowdrank"
)

// TestRankServerCertifiable: a daemon-served ranking certifies against the
// closure CertifyRanking rebuilds under the server's seed — the public
// contract documented on RankServer.
func TestRankServerCertifiable(t *testing.T) {
	const n, m = 6, 3
	cfg := crowdrank.DefaultServeConfig(n, m)
	cfg.Seed = 99
	srv, err := crowdrank.NewRankServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	}()

	var votes []crowdrank.Vote
	for w := 0; w < m; w++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				votes = append(votes, crowdrank.Vote{Worker: w, I: i, J: j, PrefersI: true})
			}
		}
	}
	ack, err := crowdrank.IngestVotes(srv, votes)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != len(votes) {
		t.Fatalf("want %d accepted, got %+v", len(votes), ack)
	}

	res, err := srv.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 99 {
		t.Fatalf("response should report the configured seed, got %d", res.Seed)
	}
	cert, err := crowdrank.CertifyRanking(n, m, votes, res.Ranking, crowdrank.WithSeed(res.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if cert.Gap < 0 {
		t.Fatalf("certificate gap must be non-negative, got %v", cert.Gap)
	}
	// An exact-rung answer must certify as optimal on its own closure.
	if res.Algorithm == "exact:heldkarp" && cert.Gap > 1e-6 {
		t.Fatalf("exact answer should certify optimal, gap %v", cert.Gap)
	}
}
